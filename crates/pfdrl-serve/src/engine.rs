//! The streaming serve engine.
//!
//! An event-driven scheduler over *simulated* minutes: telemetry
//! records arrive from a [`TelemetrySource`], are sharded into bounded
//! ingress queues, and are applied to per-home day buffers whenever a
//! chunk of minutes closes. At each chunk close the engine repairs the
//! arrived readings (forward-fill, exactly the batch pipeline's
//! `impute_forward_fill` semantics), extends the day's forecast with
//! the zero-alloc [`predict_span_into`] kernel, and walks every
//! healthy home's devices through the same act → reward → remember →
//! train loop as the batch EMS, emitting one [`DecisionRecord`] per
//! controllable device-minute to a [`DecisionSink`].
//!
//! # Determinism
//!
//! Everything is keyed to the simulated-minute cursor — there is no
//! wall-clock anywhere in the state path — so the same input stream
//! produces bit-identical decision logs and snapshots run-to-run, for
//! any shard count, chunk size or queue capacity. Mid-day snapshots
//! (the `SERVE` section) capture the full live state, and a resumed
//! engine fast-forwards the source by `lines_consumed` lines, so a
//! kill + resume replays into byte-identical output.
//!
//! # Divergences from the batch pipeline (the serve contract)
//!
//! The batch EMS knows each minute's ground-truth mode; a stream
//! carries watts only, so serve recovers modes via `classify` over the
//! repaired readings. Quarantined homes are *shed from inference*
//! (no decisions, no training — counted in `quarantined_shed`), where
//! batch only withholds their uploads. Health observes a day's dirt at
//! day *close* (the stream is only fully known then), so a day's
//! quarantine verdict gates the federation round that same night and
//! inference from the next day on. Federation fires once per day
//! boundary, not per γ-segment, and the train cadence counter persists
//! across chunk closes within a day instead of resetting per segment.

use crate::queue::BoundedQueue;
use crate::record::{format_decision, parse_telemetry, DecisionRecord, TelemetryRecord};
use crate::sink::{DecisionSink, SinkStatus};
use crate::source::TelemetrySource;
use pfdrl_core::{
    predict_span_into, EmsMethod, EmsState, ForecastPhase, PredictDayWorkspace, SimConfig,
};
use pfdrl_data::{DeviceSpec, HouseholdSpec, Mode, TraceGenerator, MINUTES_PER_DAY, WATT_CEILING};
use pfdrl_drl::{DqnAgent, Transition};
use pfdrl_env::{classify, reward, EnergyAccount};
use pfdrl_fl::MinuteSchedule;
use pfdrl_store::{
    CheckpointStore, RunSnapshot, ServeDeviceState, ServeHomeState, ServeState, StoreError,
};
use rayon::prelude::*;
use serde::Serialize;
use std::time::Instant;

/// Knobs of the serve loop. Deliberately separate from [`SimConfig`]:
/// none of these change what is computed — only how ingestion is
/// scheduled — so they are excluded from `run_hash` and the decision
/// log is byte-invariant to all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Simulated minutes per processing chunk; must divide 1440.
    pub chunk_minutes: usize,
    /// Snapshot every K simulated minutes (0 = final snapshot only).
    pub snapshot_every_minutes: u64,
    /// Ingress shards (`home % n_shards` routing).
    pub n_shards: usize,
    /// Per-shard ingress queue bound, in records.
    pub queue_capacity: usize,
    /// Whether agents take gradient steps while serving.
    pub train: bool,
    /// Abort the process right after the first chunk close at or past
    /// this simulated minute (after its snapshot) — the crash hook the
    /// kill-and-resume tests and the CI smoke job use.
    pub abort_after_minute: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            chunk_minutes: 60,
            snapshot_every_minutes: MINUTES_PER_DAY as u64,
            n_shards: 4,
            queue_capacity: 4096,
            train: true,
            abort_after_minute: None,
        }
    }
}

impl ServeConfig {
    /// # Panics
    /// Panics on an invalid combination (zero/non-dividing chunk, zero
    /// shards or queue capacity).
    pub fn validate(&self) {
        assert!(
            self.chunk_minutes >= 1 && MINUTES_PER_DAY.is_multiple_of(self.chunk_minutes),
            "chunk_minutes must divide {MINUTES_PER_DAY}, got {}",
            self.chunk_minutes
        );
        assert!(self.n_shards >= 1, "n_shards must be positive");
        assert!(self.queue_capacity >= 1, "queue_capacity must be positive");
    }
}

/// Counters of everything the engine did besides deciding. Every shed
/// class is explicit and typed — nothing is silently dropped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ServeCounters {
    /// Decisions emitted.
    pub decisions: u64,
    /// Records shed: minute older than the ingest cursor.
    pub shed_stale: u64,
    /// Records shed: minute outside the serving span.
    pub shed_out_of_span: u64,
    /// Records shed: home id outside the fleet.
    pub shed_unknown_home: u64,
    /// Records shed: unparseable line or wrong device count.
    pub shed_malformed: u64,
    /// Early shard drains forced by a full ingress queue.
    pub rejected_backpressure: u64,
    /// Sink busy-retries absorbed by the emit loop.
    pub sink_retries: u64,
    /// Device-minutes synthesized for minutes that never arrived.
    pub gap_imputed: u64,
    /// Device-minutes whose delivered value failed validation.
    pub repaired_values: u64,
    /// Decisions suppressed because the home was quarantined.
    pub quarantined_shed: u64,
}

/// What one serve run did, for the CLI's `--json` contract and the
/// throughput bench. Wall-clock figures are informational only — no
/// state depends on them.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    pub config_hash: u64,
    pub method: String,
    /// Simulated minutes actually served (cursor − span start).
    pub served_minutes: u64,
    /// Full days folded into the day-boundary metrics.
    pub completed_days: u64,
    pub decisions: u64,
    pub wall_s: f64,
    pub decisions_per_sec: f64,
    /// Mean / final `daily_saved_fraction` over completed days.
    pub mean_saved_fraction: f64,
    pub final_saved_fraction: f64,
    pub resumed_from_minute: Option<u64>,
    pub fed_rounds: u64,
    pub snapshots_written: u64,
    pub max_queue_len: u64,
    pub counters: ServeCounters,
}

/// Serve-loop failure.
#[derive(Debug)]
pub enum ServeError {
    Io(std::io::Error),
    Store(StoreError),
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o: {e}"),
            ServeError::Store(e) => write!(f, "serve store: {e}"),
            ServeError::Config(msg) => write!(f, "serve config: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// One device's live buffers. `today` always holds 1440 slots (raw
/// values land there at drain, the repair scan rewrites them in
/// place); `prev` is empty during the priming day and a full repaired
/// day afterwards; `pred` grows chunk by chunk through the day.
struct DeviceLive {
    prev: Vec<f64>,
    today: Vec<f64>,
    pred: Vec<f64>,
    /// Forward-fill seed, reset to 0.0 at each day start (mirroring
    /// `impute_forward_fill`'s leading-gap fallback).
    last_good: f64,
    steps_since_train: u64,
    account: EnergyAccount,
}

impl DeviceLive {
    fn fresh() -> Self {
        DeviceLive {
            prev: Vec::new(),
            today: vec![0.0; MINUTES_PER_DAY],
            pred: Vec::new(),
            last_good: 0.0,
            steps_since_train: 0,
            account: EnergyAccount::new(),
        }
    }
}

/// One home's live serve state plus its recycled scratch buffers.
struct HomeLive {
    home: usize,
    hh: HouseholdSpec,
    /// Which minutes of today a record arrived for.
    present: Vec<bool>,
    devices: Vec<DeviceLive>,
    imputed_today: u32,
    loss_sum: f64,
    loss_steps: u64,
    nonfinite_losses: u32,
    /// Per-day hour-of-day (saved, standby) kWh buckets.
    saved: [f64; 24],
    standby: [f64; 24],
    /// Decisions produced by the current chunk, drained at emit.
    out: Vec<DecisionRecord>,
    /// Recycled transition state buffers (replay-ring evictions).
    pool: Vec<Vec<f64>>,
    pws: PredictDayWorkspace,
    cur: Vec<f64>,
    next: Vec<f64>,
    /// Per-chunk counter deltas, folded sequentially in home order.
    chunk_gap: u64,
    chunk_repaired: u64,
    chunk_quarantined_shed: u64,
}

impl HomeLive {
    fn fresh(home: usize, hh: HouseholdSpec, n_devices: usize) -> Self {
        HomeLive {
            home,
            hh,
            present: vec![false; MINUTES_PER_DAY],
            devices: (0..n_devices).map(|_| DeviceLive::fresh()).collect(),
            imputed_today: 0,
            loss_sum: 0.0,
            loss_steps: 0,
            nonfinite_losses: 0,
            saved: [0.0; 24],
            standby: [0.0; 24],
            out: Vec::new(),
            pool: Vec::new(),
            pws: PredictDayWorkspace::default(),
            cur: Vec::new(),
            next: Vec::new(),
            chunk_gap: 0,
            chunk_repaired: 0,
            chunk_quarantined_shed: 0,
        }
    }

    /// Day-boundary reset: today becomes prev (it is fully repaired by
    /// now), buffers and per-day accumulators are cleared.
    fn roll_day(&mut self) {
        self.present.fill(false);
        self.imputed_today = 0;
        self.loss_sum = 0.0;
        self.loss_steps = 0;
        self.nonfinite_losses = 0;
        self.saved = [0.0; 24];
        self.standby = [0.0; 24];
        for (device, dl) in self.devices.iter_mut().enumerate() {
            if self.hh.devices[device].controllable {
                std::mem::swap(&mut dl.prev, &mut dl.today);
            }
            dl.today.clear();
            dl.today.resize(MINUTES_PER_DAY, 0.0);
            dl.pred.clear();
            dl.last_good = 0.0;
            dl.steps_since_train = 0;
            dl.account = EnergyAccount::new();
        }
    }
}

/// Builds the serve-side state vector for minute `t`, mirroring
/// `DeviceEnv::state_into` exactly except that both mode one-hots are
/// recovered via `classify` (the stream carries watts, not modes).
fn build_state(
    spec: &DeviceSpec,
    pred: &[f64],
    today: &[f64],
    state_window: usize,
    t: usize,
    out: &mut Vec<f64>,
) {
    let scale = spec.on_watts;
    out.clear();
    out.reserve(2 * state_window + 6);
    for p in &pred[(t + 1 - state_window)..=t] {
        out.push(p / scale);
    }
    for w in &today[(t - state_window)..t] {
        out.push(w / scale);
    }
    let pred_mode = classify(spec, pred[t]);
    let prev_mode = classify(spec, today[t - 1]);
    for m in Mode::ALL {
        out.push(if m == pred_mode { 1.0 } else { 0.0 });
    }
    for m in Mode::ALL {
        out.push(if m == prev_mode { 1.0 } else { 0.0 });
    }
}

/// The streaming service loop.
pub struct ServeEngine {
    cfg: SimConfig,
    scfg: ServeConfig,
    method: EmsMethod,
    forecast: ForecastPhase,
    ems: EmsState,
    homes: Vec<HomeLive>,
    queues: Vec<BoundedQueue>,
    /// Next simulated minute to ingest; all minutes below it are closed.
    cursor: u64,
    lines_consumed: u64,
    counters: ServeCounters,
    /// Record that triggered a chunk close, re-ingested afterwards.
    pending: Option<TelemetryRecord>,
    snap_sched: Option<MinuteSchedule>,
    store: Option<CheckpointStore>,
    resumed_from: Option<u64>,
    snapshots_written: u64,
    last_snapshot_cursor: Option<u64>,
    max_queue_len: usize,
    /// Scratch for formatting decision lines.
    line_buf: String,
}

impl ServeEngine {
    /// Fresh engine at the start of the serving span (the priming day
    /// before `eval_start_day`).
    ///
    /// # Panics
    /// Panics if `cfg` or `scfg` fail validation.
    pub fn new(
        cfg: SimConfig,
        scfg: ServeConfig,
        method: EmsMethod,
        forecast: ForecastPhase,
        store: Option<CheckpointStore>,
    ) -> Self {
        cfg.validate();
        scfg.validate();
        let generator = TraceGenerator::new(cfg.generator());
        let d = cfg.devices_per_home();
        let homes = (0..cfg.n_residences)
            .map(|home| HomeLive::fresh(home, generator.household(home as u64), d))
            .collect();
        let queues = (0..scfg.n_shards)
            .map(|_| BoundedQueue::new(scfg.queue_capacity))
            .collect();
        let serve_start = (cfg.eval_start_day - 1) * MINUTES_PER_DAY as u64;
        let snap_sched = (scfg.snapshot_every_minutes > 0)
            .then(|| MinuteSchedule::new(scfg.snapshot_every_minutes, serve_start));
        let ems = EmsState::fresh(&cfg);
        ServeEngine {
            cfg,
            scfg,
            method,
            forecast,
            ems,
            homes,
            queues,
            cursor: serve_start,
            lines_consumed: 0,
            counters: ServeCounters::default(),
            pending: None,
            snap_sched,
            store,
            resumed_from: None,
            snapshots_written: 0,
            last_snapshot_cursor: None,
            max_queue_len: 0,
            line_buf: String::new(),
        }
    }

    /// Rebuilds a live engine from a snapshot with a `SERVE` section.
    /// The day-boundary state goes through [`EmsState::from_snapshot`];
    /// the mid-day buffers are restored from the serve section, and the
    /// day's forecast prefix is recomputed (bit-identical to the
    /// chunked original — pinned by the span/full-day equivalence
    /// test in `pfdrl-core`).
    pub fn resume(
        cfg: SimConfig,
        scfg: ServeConfig,
        method: EmsMethod,
        snap: &RunSnapshot,
        store: Option<CheckpointStore>,
    ) -> Result<Self, ServeError> {
        cfg.validate();
        scfg.validate();
        if snap.meta.config_hash != cfg.run_hash() {
            return Err(ServeError::Config(format!(
                "snapshot config hash {:#x} != current {:#x}",
                snap.meta.config_hash,
                cfg.run_hash()
            )));
        }
        if snap.meta.method != method.name() {
            return Err(ServeError::Config(format!(
                "snapshot method {} != requested {}",
                snap.meta.method,
                method.name()
            )));
        }
        let serve = snap.serve.as_ref().ok_or_else(|| {
            ServeError::Config("snapshot has no serve section (batch snapshot?)".to_string())
        })?;
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();
        let serve_start = (cfg.eval_start_day - 1) * MINUTES_PER_DAY as u64;
        let end_minute = (cfg.eval_start_day + cfg.eval_days) * MINUTES_PER_DAY as u64;
        if serve.homes.len() != n || serve.homes.iter().any(|h| h.devices.len() != d) {
            return Err(ServeError::Config(
                "serve section disagrees about fleet dimensions".to_string(),
            ));
        }
        if serve.cursor < serve_start
            || serve.cursor > end_minute
            || serve.cursor % scfg.chunk_minutes as u64 != 0
        {
            return Err(ServeError::Config(format!(
                "serve cursor {} invalid for span [{serve_start}, {end_minute}] \
                 with chunk {}",
                serve.cursor, scfg.chunk_minutes
            )));
        }
        let c_in_day = (serve.cursor % MINUTES_PER_DAY as u64) as usize;
        let day = serve.cursor / MINUTES_PER_DAY as u64;
        let priming = day < cfg.eval_start_day;

        let ems = EmsState::from_snapshot(&cfg, snap)?;
        let forecast = ForecastPhase::from_state(&cfg, &snap.forecast)?;
        let generator = TraceGenerator::new(cfg.generator());

        let mut homes = Vec::with_capacity(n);
        for (home, hs) in serve.homes.iter().enumerate() {
            let mut hl = HomeLive::fresh(home, generator.household(home as u64), d);
            hl.imputed_today = hs.imputed_today;
            hl.loss_sum = hs.loss_sum;
            hl.loss_steps = hs.loss_steps;
            hl.nonfinite_losses = hs.nonfinite_losses;
            if hs.saved_hourly.len() != 24 || hs.standby_hourly.len() != 24 {
                return Err(ServeError::Config(format!(
                    "home {home}: serve hourly buckets must hold 24 bins \
                     ({} saved, {} standby)",
                    hs.saved_hourly.len(),
                    hs.standby_hourly.len()
                )));
            }
            hl.saved.copy_from_slice(&hs.saved_hourly);
            hl.standby.copy_from_slice(&hs.standby_hourly);
            for minute in 0..c_in_day {
                hl.present[minute] = true;
            }
            let quarantined = !priming && ems.health[home].quarantined();
            for (device, ds) in hs.devices.iter().enumerate() {
                let spec = &hl.hh.devices[device];
                let dl = &mut hl.devices[device];
                if !spec.controllable {
                    continue;
                }
                let want_prev = if priming { 0 } else { MINUTES_PER_DAY };
                if ds.prev_watts.len() != want_prev || ds.today_watts.len() != c_in_day {
                    return Err(ServeError::Config(format!(
                        "home {home} device {device}: serve buffers \
                         ({} prev, {} today) disagree with cursor {}",
                        ds.prev_watts.len(),
                        ds.today_watts.len(),
                        serve.cursor
                    )));
                }
                dl.prev = ds.prev_watts.clone();
                dl.today[..c_in_day].copy_from_slice(&ds.today_watts);
                dl.last_good = ds.last_good_watt;
                dl.steps_since_train = ds.steps_since_train;
                dl.account = ds.account;
                if !priming && !quarantined && c_in_day > 0 {
                    let target = (c_in_day + 1).min(MINUTES_PER_DAY);
                    predict_span_into(
                        &cfg,
                        forecast.models[home][device].as_ref(),
                        &dl.prev,
                        &dl.today,
                        spec.on_watts,
                        0,
                        target,
                        &mut hl.pws,
                        &mut dl.pred,
                    );
                }
            }
            homes.push(hl);
        }

        let queues = (0..scfg.n_shards)
            .map(|_| BoundedQueue::new(scfg.queue_capacity))
            .collect();
        let snap_sched = (scfg.snapshot_every_minutes > 0).then(|| {
            let mut s = MinuteSchedule::new(scfg.snapshot_every_minutes, serve_start);
            // Fast-forward past the resume point without firing; the
            // uninterrupted run's schedule sits at the same next-due.
            let _ = s.due(serve.cursor);
            s
        });
        // The resumed run re-serves nothing: decisions before the
        // cursor were already emitted (the sink was flushed before the
        // snapshot was written), so the log continues where it stopped.
        let counters = ServeCounters {
            decisions: serve.decisions,
            shed_stale: serve.shed_stale,
            shed_out_of_span: serve.shed_out_of_span,
            shed_unknown_home: serve.shed_unknown_home,
            shed_malformed: serve.shed_malformed,
            rejected_backpressure: serve.rejected_backpressure,
            sink_retries: serve.sink_retries,
            gap_imputed: serve.gap_imputed,
            repaired_values: serve.repaired_values,
            quarantined_shed: serve.quarantined_shed,
        };
        Ok(ServeEngine {
            cfg,
            scfg,
            method,
            forecast,
            ems,
            homes,
            queues,
            cursor: serve.cursor,
            lines_consumed: serve.lines_consumed,
            counters,
            pending: None,
            snap_sched,
            store,
            resumed_from: Some(serve.cursor),
            snapshots_written: 0,
            last_snapshot_cursor: Some(serve.cursor),
            max_queue_len: 0,
            line_buf: String::new(),
        })
    }

    fn serve_start(&self) -> u64 {
        (self.cfg.eval_start_day - 1) * MINUTES_PER_DAY as u64
    }

    fn end_minute(&self) -> u64 {
        (self.cfg.eval_start_day + self.cfg.eval_days) * MINUTES_PER_DAY as u64
    }

    /// Drives the loop until the span is served or the source runs dry,
    /// then writes a final snapshot (when a store is configured).
    pub fn run(
        &mut self,
        source: &mut dyn TelemetrySource,
        sink: &mut dyn DecisionSink,
    ) -> Result<ServeReport, ServeError> {
        let started = Instant::now();
        if self.resumed_from.is_some() {
            source.skip_lines(self.lines_consumed)?;
        }
        let mut buf = String::new();
        while self.cursor < self.end_minute() {
            let rec = match self.pending.take() {
                Some(rec) => rec,
                None => {
                    if !source.next_line(&mut buf)? {
                        break;
                    }
                    match parse_telemetry(&buf) {
                        Some(rec) => rec,
                        None => {
                            self.counters.shed_malformed += 1;
                            self.lines_consumed += 1;
                            continue;
                        }
                    }
                }
            };
            self.ingest(rec, sink)?;
        }
        // Close the final partial chunk if anything was admitted to it.
        if self.queues.iter().any(|q| !q.is_empty()) {
            self.close_chunk(sink)?;
        }
        if self.store.is_some() && self.last_snapshot_cursor != Some(self.cursor) {
            self.write_snapshot()?;
        }
        let wall_s = started.elapsed().as_secs_f64();
        Ok(self.report(wall_s))
    }

    /// Applies one record: shed, chunk-close trigger, or admission.
    fn ingest(
        &mut self,
        rec: TelemetryRecord,
        sink: &mut dyn DecisionSink,
    ) -> Result<(), ServeError> {
        if rec.home >= self.cfg.n_residences {
            self.counters.shed_unknown_home += 1;
            self.lines_consumed += 1;
            return Ok(());
        }
        if rec.watts.len() != self.cfg.devices_per_home() {
            self.counters.shed_malformed += 1;
            self.lines_consumed += 1;
            return Ok(());
        }
        if rec.minute < self.serve_start() || rec.minute >= self.end_minute() {
            self.counters.shed_out_of_span += 1;
            self.lines_consumed += 1;
            return Ok(());
        }
        if rec.minute < self.cursor {
            self.counters.shed_stale += 1;
            self.lines_consumed += 1;
            return Ok(());
        }
        let chunk = self.scfg.chunk_minutes as u64;
        if rec.minute >= self.cursor + chunk {
            // The record belongs to a later chunk: close the open one
            // first, then retry. The record is NOT counted as consumed
            // yet — a resume from the snapshot the close may write will
            // re-read this line and replay the same trigger.
            self.pending = Some(rec);
            self.close_chunk(sink)?;
            return Ok(());
        }
        let shard = rec.home % self.scfg.n_shards;
        let rec = match self.queues[shard].offer(rec) {
            Ok(()) => {
                self.max_queue_len = self.max_queue_len.max(self.queues[shard].len());
                self.lines_consumed += 1;
                return Ok(());
            }
            Err(rec) => rec,
        };
        // Backpressure: the shard is full. Drain it into the day
        // buffers early (index writes — order-independent across
        // shards) instead of growing anything.
        self.counters.rejected_backpressure += 1;
        Self::drain_queue(&mut self.queues[shard], &mut self.homes);
        self.queues[shard]
            .offer(rec)
            .unwrap_or_else(|_| unreachable!("queue was just drained"));
        self.max_queue_len = self.max_queue_len.max(self.queues[shard].len());
        self.lines_consumed += 1;
        Ok(())
    }

    /// Applies every queued record of `queue` to the day buffers. All
    /// records in a queue belong to the open chunk, and each targets
    /// its own (home, minute) slots, so drain order across shards does
    /// not matter; duplicates resolve to the last arrival in-shard.
    fn drain_queue(queue: &mut BoundedQueue, homes: &mut [HomeLive]) {
        while let Some(rec) = queue.pop() {
            let minute = (rec.minute % MINUTES_PER_DAY as u64) as usize;
            let hl = &mut homes[rec.home];
            hl.present[minute] = true;
            for (device, &w) in rec.watts.iter().enumerate() {
                hl.devices[device].today[minute] = w;
            }
        }
    }

    /// Closes the chunk `[cursor, cursor + chunk)`: drains the queues,
    /// repairs, predicts, decides, emits, and rolls the day/snapshot
    /// machinery when the close lands on their boundaries.
    fn close_chunk(&mut self, sink: &mut dyn DecisionSink) -> Result<(), ServeError> {
        let chunk = self.scfg.chunk_minutes;
        let c0 = (self.cursor % MINUTES_PER_DAY as u64) as usize;
        let c1 = c0 + chunk;
        let day = self.cursor / MINUTES_PER_DAY as u64;
        let priming = day < self.cfg.eval_start_day;

        for queue in &mut self.queues {
            Self::drain_queue(queue, &mut self.homes);
        }

        // A day's quarantine verdict (set at the previous day close)
        // holds for the whole day; count it once at the day's first
        // chunk, mirroring the batch accounting.
        if c0 == 0 && !priming {
            for h in &self.ems.health {
                if h.quarantined() {
                    self.ems.quarantined_home_days += 1;
                }
            }
        }

        let cfg = &self.cfg;
        let forecast = &self.forecast;
        let train = self.scfg.train;
        let day_minute0 = day * MINUTES_PER_DAY as u64;
        let EmsState { agents, health, .. } = &mut self.ems;
        let health = &*health;
        self.homes
            .par_iter_mut()
            .zip(agents.par_iter_mut())
            .for_each(|(hl, agent_row)| {
                repair_chunk(hl, c0, c1);
                if priming {
                    return;
                }
                if health[hl.home].quarantined() {
                    let decide_from = c0.max(cfg.state_window);
                    if c1 > decide_from {
                        let controllable = hl.hh.devices.iter().filter(|s| s.controllable).count();
                        hl.chunk_quarantined_shed += ((c1 - decide_from) * controllable) as u64;
                    }
                    return;
                }
                decide_chunk(cfg, forecast, hl, agent_row, c0, c1, day_minute0, train);
            });

        // Sequential folds + emission, in home order (determinism).
        for hl in &mut self.homes {
            self.counters.gap_imputed += hl.chunk_gap;
            self.counters.repaired_values += hl.chunk_repaired;
            self.counters.quarantined_shed += hl.chunk_quarantined_shed;
            hl.chunk_gap = 0;
            hl.chunk_repaired = 0;
            hl.chunk_quarantined_shed = 0;
            for dec in hl.out.drain(..) {
                format_decision(&dec, &mut self.line_buf);
                loop {
                    match sink.emit(&self.line_buf)? {
                        SinkStatus::Accepted => break,
                        SinkStatus::Busy => {
                            // The engine pulls no further input while
                            // a slow sink throttles it: ingress stays
                            // bounded no matter how slow the consumer.
                            self.counters.sink_retries += 1;
                        }
                    }
                }
                self.counters.decisions += 1;
            }
        }
        // Flush before any snapshot: a snapshot must never claim
        // decisions that are still sitting in a write buffer.
        sink.flush()?;

        self.cursor += chunk as u64;
        if self.cursor.is_multiple_of(MINUTES_PER_DAY as u64) {
            self.close_day(day, priming);
        }
        let snap_due = match &mut self.snap_sched {
            Some(s) => s.due(self.cursor),
            None => false,
        };
        if self.store.is_some() && (snap_due || self.cursor == self.end_minute()) {
            self.write_snapshot()?;
        }
        if let Some(abort_at) = self.scfg.abort_after_minute {
            if self.cursor >= abort_at && self.cursor < self.end_minute() {
                // Crash hook: die hard (no unwinding, no Drop flushes),
                // exactly like a SIGKILL, after the snapshot above.
                std::process::abort();
            }
        }
        Ok(())
    }

    /// Day-boundary bookkeeping, mirroring the batch day fold.
    fn close_day(&mut self, day: u64, priming: bool) {
        if !priming {
            let n = self.cfg.n_residences;
            let late_start =
                self.cfg.eval_start_day + self.cfg.eval_days - self.cfg.eval_days.div_ceil(3);

            let mut loss_sum = 0.0f64;
            let mut loss_steps = 0u64;
            let mut nonfinite = 0u32;
            let mut day_account = EnergyAccount::new();
            for hl in &self.homes {
                loss_sum += hl.loss_sum;
                loss_steps += hl.loss_steps;
                nonfinite += hl.nonfinite_losses;
                for dl in &hl.devices {
                    day_account.merge(&dl.account);
                    if day >= late_start {
                        self.ems.per_home_late[hl.home].merge(&dl.account);
                    }
                }
                for h in 0..24 {
                    self.ems.hourly_saved[h] += hl.saved[h];
                    self.ems.hourly_standby[h] += hl.standby[h];
                }
            }
            self.ems.total.merge(&day_account);
            self.ems
                .daily_saved_fraction
                .push(day_account.saved_fraction().unwrap_or(0.0));
            self.ems
                .daily_saved_kwh_per_client
                .push(day_account.standby_saved_kwh / n as f64);
            let mean_loss = if nonfinite > 0 {
                f64::NAN
            } else if loss_steps == 0 {
                0.0
            } else {
                loss_sum / loss_steps as f64
            };
            self.ems.daily_mean_loss.push(mean_loss);

            // Health observes the day's dirt now that the whole stream
            // for it is known; the verdict gates tonight's federation
            // round and tomorrow's inference.
            for hl in &self.homes {
                self.ems.imputed_minutes += hl.imputed_today as u64;
                let dirty = hl.imputed_today >= self.cfg.health.dirty_minutes;
                if self.ems.health[hl.home].observe_day(dirty, &self.cfg.health) {
                    self.ems.health_transitions += 1;
                }
            }

            self.ems.federate_now(&self.cfg, self.method);
            self.ems.next_day = day + 1;
        }
        for hl in &mut self.homes {
            hl.roll_day();
        }
    }

    /// Captures the full live state (day-boundary + serve section).
    fn write_snapshot(&mut self) -> Result<(), ServeError> {
        let store = self.store.as_ref().expect("caller checked store");
        let mut forecast_state = self.forecast.export_state();
        // The forecast section carries an informational training
        // wall-clock; serve snapshots zero it so two runs over the same
        // stream are byte-identical (the serve determinism contract).
        forecast_state.train_wall_s = 0.0;
        let mut snap = self.ems.to_snapshot(&self.cfg, self.method, forecast_state);
        // Serve always runs the health machine, so the section is
        // always present (batch gates it on the fault config).
        snap.health = Some(self.ems.export_health());
        snap.serve = Some(self.export_serve());
        store.save(&snap)?;
        self.snapshots_written += 1;
        self.last_snapshot_cursor = Some(self.cursor);
        Ok(())
    }

    fn export_serve(&self) -> ServeState {
        let c_in_day = (self.cursor % MINUTES_PER_DAY as u64) as usize;
        ServeState {
            cursor: self.cursor,
            lines_consumed: self.lines_consumed,
            decisions: self.counters.decisions,
            shed_stale: self.counters.shed_stale,
            shed_out_of_span: self.counters.shed_out_of_span,
            shed_unknown_home: self.counters.shed_unknown_home,
            shed_malformed: self.counters.shed_malformed,
            rejected_backpressure: self.counters.rejected_backpressure,
            sink_retries: self.counters.sink_retries,
            gap_imputed: self.counters.gap_imputed,
            repaired_values: self.counters.repaired_values,
            quarantined_shed: self.counters.quarantined_shed,
            homes: self
                .homes
                .iter()
                .map(|hl| ServeHomeState {
                    imputed_today: hl.imputed_today,
                    loss_sum: hl.loss_sum,
                    loss_steps: hl.loss_steps,
                    nonfinite_losses: hl.nonfinite_losses,
                    saved_hourly: hl.saved.to_vec(),
                    standby_hourly: hl.standby.to_vec(),
                    devices: hl
                        .devices
                        .iter()
                        .enumerate()
                        .map(|(device, dl)| {
                            if !hl.hh.devices[device].controllable {
                                return ServeDeviceState::default();
                            }
                            ServeDeviceState {
                                last_good_watt: dl.last_good,
                                steps_since_train: dl.steps_since_train,
                                account: dl.account,
                                prev_watts: dl.prev.clone(),
                                today_watts: dl.today[..c_in_day].to_vec(),
                            }
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    fn report(&self, wall_s: f64) -> ServeReport {
        let completed = self.ems.daily_saved_fraction.len();
        let mean = if completed == 0 {
            0.0
        } else {
            self.ems.daily_saved_fraction.iter().sum::<f64>() / completed as f64
        };
        ServeReport {
            config_hash: self.cfg.run_hash(),
            method: self.method.name().to_string(),
            served_minutes: self.cursor - self.serve_start(),
            completed_days: completed as u64,
            decisions: self.counters.decisions,
            wall_s,
            decisions_per_sec: if wall_s > 0.0 {
                self.counters.decisions as f64 / wall_s
            } else {
                0.0
            },
            mean_saved_fraction: mean,
            final_saved_fraction: self.ems.daily_saved_fraction.last().copied().unwrap_or(0.0),
            resumed_from_minute: self.resumed_from,
            fed_rounds: self.ems.fed_round,
            snapshots_written: self.snapshots_written,
            max_queue_len: self.max_queue_len as u64,
            counters: self.counters,
        }
    }

    /// Whether the full serving span has been processed.
    pub fn done(&self) -> bool {
        self.cursor >= self.end_minute()
    }

    /// The ingest cursor (next simulated minute to serve).
    pub fn cursor(&self) -> u64 {
        self.cursor
    }
}

/// Repairs the chunk `[c0, c1)` of one home in place: minutes that
/// never arrived forward-fill from the last good value, delivered
/// values outside the plausible band (non-finite, negative, above
/// [`WATT_CEILING`]) are replaced the same way. Matches
/// `impute_forward_fill` semantics with a per-day 0.0 fallback.
fn repair_chunk(hl: &mut HomeLive, c0: usize, c1: usize) {
    let HomeLive {
        hh,
        present,
        devices,
        imputed_today,
        chunk_gap,
        chunk_repaired,
        ..
    } = hl;
    for (device, dl) in devices.iter_mut().enumerate() {
        if !hh.devices[device].controllable {
            continue;
        }
        for (seen, watt) in present[c0..c1].iter().zip(&mut dl.today[c0..c1]) {
            if !seen {
                *watt = dl.last_good;
                *chunk_gap += 1;
                *imputed_today += 1;
                continue;
            }
            let w = *watt;
            if !w.is_finite() || !(0.0..=WATT_CEILING).contains(&w) {
                *watt = dl.last_good;
                *chunk_repaired += 1;
                *imputed_today += 1;
            } else {
                dl.last_good = w;
            }
        }
    }
}

/// Extends forecasts and walks the decide loop for the chunk `[c0,
/// c1)` of one healthy home: per controllable device, build the state,
/// act, account, record the decision, remember the transition, and
/// train on the configured cadence.
#[allow(clippy::too_many_arguments)]
fn decide_chunk(
    cfg: &SimConfig,
    forecast: &ForecastPhase,
    hl: &mut HomeLive,
    agents: &mut [DqnAgent],
    c0: usize,
    c1: usize,
    day_minute0: u64,
    train: bool,
) {
    let HomeLive {
        home,
        hh,
        devices,
        loss_sum,
        loss_steps,
        nonfinite_losses,
        saved,
        standby,
        out,
        pool,
        pws,
        cur,
        next,
        ..
    } = hl;
    let home = *home;
    let sw = cfg.state_window;
    let decide_from = c0.max(sw);
    for (device, dl) in devices.iter_mut().enumerate() {
        let spec = &hh.devices[device];
        if !spec.controllable {
            continue;
        }
        // Extend the day's forecast to cover this chunk's decisions
        // plus the successor state at c1 (the last minute's transition
        // looks one row ahead).
        let target = (c1 + 1).min(MINUTES_PER_DAY);
        if dl.pred.len() < target {
            let r0 = dl.pred.len();
            predict_span_into(
                cfg,
                forecast.models[home][device].as_ref(),
                &dl.prev,
                &dl.today,
                spec.on_watts,
                r0,
                target,
                pws,
                &mut dl.pred,
            );
        }
        let agent = &mut agents[device];
        for t in decide_from..c1 {
            build_state(spec, &dl.pred, &dl.today, sw, t, cur);
            let action = agent.act(cur);
            let true_mode = classify(spec, dl.today[t]);
            let r = reward(true_mode, action);
            let before = dl.account;
            dl.account.record(true_mode, dl.today[t], action, r);
            let hour = t / 60;
            saved[hour] += dl.account.standby_saved_kwh - before.standby_saved_kwh;
            standby[hour] += dl.account.standby_total_kwh - before.standby_total_kwh;
            out.push(DecisionRecord {
                minute: day_minute0 + t as u64,
                home,
                device,
                action: action.index(),
                reward: r,
            });
            let mut state = pool.pop().unwrap_or_default();
            state.clear();
            state.extend_from_slice(cur);
            let next_state = if t + 1 >= MINUTES_PER_DAY {
                None
            } else {
                build_state(spec, &dl.pred, &dl.today, sw, t + 1, next);
                let mut s = pool.pop().unwrap_or_default();
                s.clear();
                s.extend_from_slice(next);
                Some(s)
            };
            if let Some(evicted) = agent.remember_evict(Transition {
                state,
                action: action.index(),
                reward: r,
                next_state,
            }) {
                pool.push(evicted.state);
                if let Some(s) = evicted.next_state {
                    pool.push(s);
                }
            }
            dl.steps_since_train += 1;
            if train && dl.steps_since_train >= cfg.train_every as u64 && agent.ready() {
                let loss = agent.train_step();
                if loss.is_finite() {
                    *loss_sum += loss;
                    *loss_steps += 1;
                } else {
                    *nonfinite_losses += 1;
                }
                dl.steps_since_train = 0;
            }
        }
    }
}
