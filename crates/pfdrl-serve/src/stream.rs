//! Synthetic telemetry stream generation.
//!
//! Replays the batch pipeline's [`TraceGenerator`] as a minute-major
//! NDJSON stream: for each simulated minute, one line per home
//! carrying that minute's raw watt readings for every configured
//! device. The per-(home, device, day) traces are bit-identical to
//! what the batch pipeline loads, and when the config's sensor-fault
//! plan is active the same `corrupt_day` corruption is applied to the
//! raw watts *before* emission — the serve engine's repair scan, not
//! the stream, is responsible for cleaning them up.

use crate::record::format_telemetry;
use pfdrl_core::SimConfig;
use pfdrl_data::{DayTrace, TraceGenerator, MINUTES_PER_DAY};

/// Appends `days` days of minute-major telemetry lines for the whole
/// fleet, starting at absolute day `start_day`, to `out`.
///
/// Line order within a minute is home order, so the stream is
/// deterministic and two calls with the same arguments are
/// byte-identical.
pub fn generate_stream(cfg: &SimConfig, start_day: u64, days: u64, out: &mut Vec<String>) {
    let generator = TraceGenerator::new(cfg.generator());
    let n_devices = cfg.devices_per_home();
    let plan = cfg.sensor_fault.plan();
    let households: Vec<_> = (0..cfg.n_residences as u64)
        .map(|h| generator.household(h))
        .collect();

    // One day's traces for every (home, device), reused across days.
    let mut traces = vec![vec![DayTrace::default(); n_devices]; cfg.n_residences];
    let mut watts = vec![0.0_f64; n_devices];
    let mut line = String::new();

    for day in start_day..start_day + days {
        for (home, hh) in households.iter().enumerate() {
            for (device, trace) in traces[home].iter_mut().enumerate() {
                generator.day_trace_into(hh, device, day, trace);
                if plan.is_active() {
                    plan.corrupt_day(home as u64, device as u64, day, &mut trace.watts);
                }
            }
        }
        for minute in 0..MINUTES_PER_DAY {
            let abs_minute = day * MINUTES_PER_DAY as u64 + minute as u64;
            for (home, home_traces) in traces.iter().enumerate() {
                for (device, trace) in home_traces.iter().enumerate() {
                    watts[device] = trace.watts[minute];
                }
                format_telemetry(abs_minute, home, &watts, &mut line);
                out.push(line.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::parse_telemetry;

    #[test]
    fn stream_is_minute_major_and_deterministic() {
        let cfg = SimConfig::tiny(42);
        let mut a = Vec::new();
        generate_stream(&cfg, 2, 1, &mut a);
        assert_eq!(a.len(), MINUTES_PER_DAY * cfg.n_residences);

        let mut b = Vec::new();
        generate_stream(&cfg, 2, 1, &mut b);
        assert_eq!(a, b);

        for (i, lin) in a.iter().enumerate() {
            let rec = parse_telemetry(lin).expect("generated line must parse");
            assert_eq!(rec.minute, 2 * MINUTES_PER_DAY as u64 + (i / 3) as u64);
            assert_eq!(rec.home, i % 3);
            assert_eq!(rec.watts.len(), cfg.devices_per_home());
        }
    }

    #[test]
    fn stream_matches_generator_traces_bitwise() {
        let cfg = SimConfig::tiny(7);
        let mut lines = Vec::new();
        generate_stream(&cfg, 3, 1, &mut lines);
        let generator = TraceGenerator::new(cfg.generator());
        let trace = generator.day_trace(1, 0, 3);
        for minute in 0..MINUTES_PER_DAY {
            let rec = parse_telemetry(&lines[minute * cfg.n_residences + 1]).unwrap();
            assert_eq!(rec.watts[0].to_bits(), trace.watts[minute].to_bits());
        }
    }
}
