//! Bounded per-shard ingress queues.
//!
//! Every record admitted to the engine sits in exactly one shard's
//! queue until the next chunk close drains it into the day buffers.
//! The bound is hard: a full queue rejects the offer and hands the
//! record back, and the engine reacts by draining that shard early
//! (counting `rejected_backpressure`) — ingress memory is capped at
//! `n_shards × capacity` records no matter how hot the stream runs.

use crate::record::TelemetryRecord;
use std::collections::VecDeque;

/// Fixed-capacity FIFO of admitted telemetry records.
pub struct BoundedQueue {
    items: VecDeque<TelemetryRecord>,
    capacity: usize,
}

impl BoundedQueue {
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Enqueues, or hands the record back when full.
    pub fn offer(&mut self, rec: TelemetryRecord) -> Result<(), TelemetryRecord> {
        if self.items.len() >= self.capacity {
            return Err(rec);
        }
        self.items.push_back(rec);
        Ok(())
    }

    pub fn pop(&mut self) -> Option<TelemetryRecord> {
        self.items.pop_front()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(minute: u64) -> TelemetryRecord {
        TelemetryRecord {
            minute,
            home: 0,
            watts: vec![],
        }
    }

    #[test]
    fn bound_is_hard_and_fifo_order_holds() {
        let mut q = BoundedQueue::new(2);
        q.offer(rec(1)).unwrap();
        q.offer(rec(2)).unwrap();
        let back = q.offer(rec(3)).unwrap_err();
        assert_eq!(back.minute, 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().minute, 1);
        q.offer(rec(3)).unwrap();
        assert_eq!(q.pop().unwrap().minute, 2);
        assert_eq!(q.pop().unwrap().minute, 3);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::new(0);
    }
}
