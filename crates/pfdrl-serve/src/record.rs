//! Wire records of the service: telemetry in, decisions out.
//!
//! Both sides are single-line JSON with a fixed key order, parsed and
//! formatted by hand so the hot ingest path does not depend on a
//! general JSON tree. The formats are part of the service contract:
//!
//! ```text
//! telemetry: {"m":<minute>,"h":<home>,"w":[<watts>,...]}
//! decision:  {"m":<minute>,"h":<home>,"d":<device>,"a":<mode>,"r":<reward>}
//! ```
//!
//! `m` is the absolute simulated minute (day × 1440 + minute-of-day),
//! `w` has one entry per configured device, `a` is the commanded
//! [`Mode`](pfdrl_data::Mode) index. Floats use Rust's shortest
//! round-trip formatting, so emitted values re-parse bit-exactly and
//! two identical runs produce byte-identical logs.

use std::fmt::Write as _;

/// One home's minute of telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecord {
    /// Absolute simulated minute.
    pub minute: u64,
    /// Home index within the fleet.
    pub home: usize,
    /// Raw watt readings, one per configured device. Values are taken
    /// as delivered — non-finite, negative and above-ceiling readings
    /// are the repair scan's job, not the parser's.
    pub watts: Vec<f64>,
}

/// One emitted device-mode decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Absolute simulated minute the decision applies to.
    pub minute: u64,
    /// Home index.
    pub home: usize,
    /// Device index within the home.
    pub device: usize,
    /// Commanded mode index (`Mode::ALL` order).
    pub action: usize,
    /// Reward of the decision against the repaired ground truth.
    pub reward: f64,
}

fn split_uint(s: &str) -> Option<(u64, &str)> {
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    s[..end].parse().ok().map(|v| (v, &s[end..]))
}

/// Parses one telemetry line; `None` on any structural deviation
/// (the engine counts those as `shed_malformed`).
pub fn parse_telemetry(line: &str) -> Option<TelemetryRecord> {
    let s = line.trim();
    let s = s.strip_prefix("{\"m\":")?;
    let (minute, s) = split_uint(s)?;
    let s = s.strip_prefix(",\"h\":")?;
    let (home, s) = split_uint(s)?;
    let mut s = s.strip_prefix(",\"w\":[")?;
    let mut watts = Vec::new();
    if let Some(rest) = s.strip_prefix(']') {
        if rest != "}" {
            return None;
        }
        return Some(TelemetryRecord {
            minute,
            home: home as usize,
            watts,
        });
    }
    loop {
        let end = s.find([',', ']'])?;
        watts.push(s[..end].parse().ok()?);
        let sep = s.as_bytes()[end];
        s = &s[end + 1..];
        if sep == b']' {
            break;
        }
    }
    if s != "}" {
        return None;
    }
    Some(TelemetryRecord {
        minute,
        home: home as usize,
        watts,
    })
}

/// Formats one telemetry line (the inverse of [`parse_telemetry`])
/// into `out`, which is cleared first. No trailing newline.
pub fn format_telemetry(minute: u64, home: usize, watts: &[f64], out: &mut String) {
    out.clear();
    let _ = write!(out, "{{\"m\":{minute},\"h\":{home},\"w\":[");
    for (i, w) in watts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{w}");
    }
    out.push_str("]}");
}

/// Formats one decision line into `out`, which is cleared first.
/// No trailing newline.
pub fn format_decision(d: &DecisionRecord, out: &mut String) {
    out.clear();
    let _ = write!(
        out,
        "{{\"m\":{},\"h\":{},\"d\":{},\"a\":{},\"r\":{}}}",
        d.minute, d.home, d.device, d.action, d.reward
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_round_trips_exactly() {
        let cases: [&[f64]; 4] = [
            &[],
            &[0.0],
            &[87.5, -0.0, 1.0e-17],
            &[f64::NAN, f64::INFINITY, -3.25],
        ];
        let mut line = String::new();
        for watts in cases {
            format_telemetry(1234, 7, watts, &mut line);
            let rec = parse_telemetry(&line).unwrap();
            assert_eq!(rec.minute, 1234);
            assert_eq!(rec.home, 7);
            assert_eq!(rec.watts.len(), watts.len());
            for (a, b) in rec.watts.iter().zip(watts) {
                assert_eq!(a.to_bits(), b.to_bits(), "{line}");
            }
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "{}",
            "garbage",
            "{\"m\":,\"h\":0,\"w\":[1]}",
            "{\"m\":1,\"h\":0,\"w\":[1}",
            "{\"m\":1,\"h\":0,\"w\":[1]}}",
            "{\"m\":1,\"h\":0,\"w\":[1],\"x\":2}",
            "{\"h\":0,\"m\":1,\"w\":[1]}",
            "{\"m\":-1,\"h\":0,\"w\":[1]}",
            "{\"m\":1,\"h\":0,\"w\":[--1]}",
        ] {
            assert!(parse_telemetry(bad).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn decision_format_is_stable() {
        let mut line = String::new();
        format_decision(
            &DecisionRecord {
                minute: 2881,
                home: 2,
                device: 1,
                action: 0,
                reward: 30.0,
            },
            &mut line,
        );
        assert_eq!(line, "{\"m\":2881,\"h\":2,\"d\":1,\"a\":0,\"r\":30}");
    }
}
