//! Streaming ingestion + online inference for the PFDRL EMS
//! (DESIGN.md §13).
//!
//! The batch pipeline (`pfdrl-core`) replays whole days; this crate
//! turns the same kernels into a *service*: per-home minute telemetry
//! arrives as an NDJSON stream ([`TelemetrySource`]), is sharded into
//! bounded ingress queues with explicit typed shed/backpressure
//! outcomes, and flows through repair → forecast ([`predict_span_into`]
//! spans of the batch featurization) → DQN decide → [`DecisionSink`],
//! with live state snapshotted every K *simulated* minutes through
//! `pfdrl-store`'s `SERVE` section so a kill + resume is byte-exact.
//!
//! Entry points: [`ServeEngine::new`] / [`ServeEngine::resume`] +
//! [`ServeEngine::run`]; [`generate_stream`] produces replayable
//! synthetic streams for tests, benches and the CLI fixture.
//!
//! [`predict_span_into`]: pfdrl_core::predict_span_into

mod engine;
mod queue;
mod record;
mod sink;
mod source;
mod stream;

pub use engine::{ServeConfig, ServeCounters, ServeEngine, ServeError, ServeReport};
pub use queue::BoundedQueue;
pub use record::{
    format_decision, format_telemetry, parse_telemetry, DecisionRecord, TelemetryRecord,
};
pub use sink::{DecisionSink, FlakySink, NdjsonSink, SinkStatus, VecSink};
pub use source::{NdjsonSource, TelemetrySource, VecSource};
pub use stream::generate_stream;
