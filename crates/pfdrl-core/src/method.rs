//! The five compared EMS architectures (Table 2).

use serde::{Deserialize, Serialize};

/// Comparison methods of §4:
///
/// | Method | Load forecasting          | EMS             |
/// |--------|---------------------------|-----------------|
/// | Local  | local NN                  | local RL        |
/// | Cloud  | cloud NN (pooled data)    | local RL        |
/// | FL     | federated (cloud server)  | local RL        |
/// | FRL    | federated (cloud server)  | federated RL    |
/// | PFDRL  | decentralized federated   | personalized federated RL |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmsMethod {
    Local,
    Cloud,
    Fl,
    Frl,
    Pfdrl,
}

impl EmsMethod {
    /// All methods in the paper's presentation order.
    pub const ALL: [EmsMethod; 5] = [
        EmsMethod::Local,
        EmsMethod::Cloud,
        EmsMethod::Fl,
        EmsMethod::Frl,
        EmsMethod::Pfdrl,
    ];

    pub fn name(self) -> &'static str {
        match self {
            EmsMethod::Local => "Local",
            EmsMethod::Cloud => "Cloud",
            EmsMethod::Fl => "FL",
            EmsMethod::Frl => "FRL",
            EmsMethod::Pfdrl => "PFDRL",
        }
    }

    // --- Table 2 feature columns -------------------------------------

    /// "Local Area": no traffic leaves the residential network.
    pub fn stays_in_local_area(self) -> bool {
        matches!(self, EmsMethod::Local | EmsMethod::Pfdrl)
    }

    /// "Data Privacy": raw data never leaves the home *and* no central
    /// party holds a global model.
    pub fn preserves_privacy(self) -> bool {
        matches!(self, EmsMethod::Local | EmsMethod::Pfdrl)
    }

    /// "Small Batch Model Training": benefits from collaborative
    /// training when local data is scarce.
    pub fn small_batch_training(self) -> bool {
        !matches!(self, EmsMethod::Local)
    }

    /// "Sharing EMS": reinforcement-learning agents are shared.
    pub fn shares_ems(self) -> bool {
        matches!(self, EmsMethod::Frl | EmsMethod::Pfdrl)
    }

    /// "Personalization": per-residence model components.
    pub fn personalized(self) -> bool {
        matches!(self, EmsMethod::Local | EmsMethod::Pfdrl)
    }

    /// Whether raw training data is uploaded to a cloud service
    /// (only the Cloud baseline pools data centrally).
    pub fn uploads_raw_data(self) -> bool {
        matches!(self, EmsMethod::Cloud)
    }

    /// Whether any cloud service is involved at all.
    pub fn uses_cloud(self) -> bool {
        matches!(self, EmsMethod::Cloud | EmsMethod::Fl | EmsMethod::Frl)
    }
}

impl std::fmt::Display for EmsMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2, row by row.
    #[test]
    fn table_2_feature_matrix() {
        use EmsMethod::*;
        // (method, local area, privacy, small batch, sharing EMS, personalization)
        let rows = [
            (Local, true, true, false, false, true),
            (Cloud, false, false, true, false, false),
            (Fl, false, false, true, false, false),
            (Frl, false, false, true, true, false),
            (Pfdrl, true, true, true, true, true),
        ];
        for (m, area, privacy, small, sharing, pers) in rows {
            assert_eq!(m.stays_in_local_area(), area, "{m} local area");
            assert_eq!(m.preserves_privacy(), privacy, "{m} privacy");
            assert_eq!(m.small_batch_training(), small, "{m} small batch");
            assert_eq!(m.shares_ems(), sharing, "{m} sharing EMS");
            assert_eq!(m.personalized(), pers, "{m} personalization");
        }
    }

    #[test]
    fn only_cloud_uploads_raw_data() {
        for m in EmsMethod::ALL {
            assert_eq!(m.uploads_raw_data(), m == EmsMethod::Cloud);
        }
    }

    #[test]
    fn pfdrl_is_the_only_full_featured_method() {
        let full = EmsMethod::ALL.into_iter().filter(|m| {
            m.stays_in_local_area()
                && m.preserves_privacy()
                && m.small_batch_training()
                && m.shares_ems()
                && m.personalized()
        });
        assert_eq!(full.collect::<Vec<_>>(), vec![EmsMethod::Pfdrl]);
    }
}
