//! End-to-end pipeline runner: forecaster training followed by the EMS
//! phase, with cost accounting for the time-overhead figures.

use crate::config::SimConfig;
use crate::ems::{run_ems, EmsPhase, EmsState};
use crate::forecast::{train_forecasters, ForecastPhase};
use crate::method::EmsMethod;
use pfdrl_env::EnergyAccount;
use pfdrl_store::{CheckpointStore, RunSnapshot, StoreError};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// A full run of one comparison method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodRun {
    pub method: String,
    /// Forecaster-training wall-clock seconds.
    pub forecast_train_wall_s: f64,
    /// Forecaster-training simulated communication seconds.
    pub forecast_comm_s: f64,
    /// Forecaster-training bytes on the wire (post-compression).
    pub forecast_bytes: u64,
    /// Forecaster-training bytes before compression; equal to
    /// `forecast_bytes` under the default `Raw` codec.
    #[serde(default)]
    pub forecast_logical_bytes: u64,
    /// The EMS phase results.
    pub ems: EmsPhase,
}

impl MethodRun {
    /// Total time overhead (compute + simulated communication), seconds —
    /// the quantity compared in Figure 14.
    pub fn total_overhead_s(&self) -> f64 {
        self.forecast_train_wall_s + self.forecast_comm_s + self.ems.train_wall_s + self.ems.comm_s
    }

    /// Mean saved-standby fraction over the last third of eval days
    /// (converged performance).
    pub fn converged_saved_fraction(&self) -> f64 {
        let days = &self.ems.daily_saved_fraction;
        let tail = days.len().div_ceil(3);
        let slice = &days[days.len() - tail..];
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// First eval day (0-based) on which the saved fraction reached
    /// `threshold` × the converged level — the Figure 9 convergence-speed
    /// measure. `None` if never reached.
    pub fn days_to_converge(&self, threshold: f64) -> Option<usize> {
        let target = threshold * self.converged_saved_fraction();
        self.ems
            .daily_saved_fraction
            .iter()
            .position(|&f| f >= target)
    }
}

/// The deterministic outcome of a run — every metric that must be
/// bit-identical between an uninterrupted run and a crash-resumed one.
/// Wall-clock timings are deliberately excluded (they can never be
/// reproduced); simulated communication time *is* included because the
/// latency model is a pure function of the transport statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    pub method: String,
    /// Forecast-phase simulated communication seconds.
    pub forecast_comm_s: f64,
    /// Forecast-phase bytes on the wire (post-compression).
    pub forecast_bytes: u64,
    /// Forecast-phase bytes before compression.
    #[serde(default)]
    pub forecast_logical_bytes: u64,
    /// EMS-phase simulated communication seconds.
    pub ems_comm_s: f64,
    /// EMS-phase bytes on the wire (post-compression).
    pub ems_comm_bytes: u64,
    /// EMS-phase bytes before compression.
    #[serde(default)]
    pub ems_comm_logical_bytes: u64,
    /// Aggregate energy account over all homes, devices and days.
    pub account: EnergyAccount,
    pub daily_saved_fraction: Vec<f64>,
    pub daily_saved_kwh_per_client: Vec<f64>,
    pub hourly_saved_kwh_per_client: Vec<f64>,
    pub hourly_standby_kwh_per_client: Vec<f64>,
    pub per_home_saved_fraction: Vec<f64>,
    pub per_home_saved_kwh: Vec<f64>,
}

impl MethodRun {
    /// The deterministic (wall-clock-free) projection of this run.
    pub fn result(&self) -> RunResult {
        RunResult {
            method: self.method.clone(),
            forecast_comm_s: self.forecast_comm_s,
            forecast_bytes: self.forecast_bytes,
            forecast_logical_bytes: self.forecast_logical_bytes,
            ems_comm_s: self.ems.comm_s,
            ems_comm_bytes: self.ems.comm_bytes,
            ems_comm_logical_bytes: self.ems.comm_logical_bytes,
            account: self.ems.account,
            daily_saved_fraction: self.ems.daily_saved_fraction.clone(),
            daily_saved_kwh_per_client: self.ems.daily_saved_kwh_per_client.clone(),
            hourly_saved_kwh_per_client: self.ems.hourly_saved_kwh_per_client.clone(),
            hourly_standby_kwh_per_client: self.ems.hourly_standby_kwh_per_client.clone(),
            per_home_saved_fraction: self.ems.per_home_saved_fraction.clone(),
            per_home_saved_kwh: self.ems.per_home_saved_kwh.clone(),
        }
    }
}

/// A [`MethodRun`] that may have been resumed from a checkpoint.
#[derive(Debug, Clone)]
pub struct ResumableRun {
    /// The completed run.
    pub run: MethodRun,
    /// First evaluation day executed by *this* process if the run was
    /// resumed from a snapshot; `None` for a from-scratch run.
    pub resumed_from_day: Option<u64>,
}

/// Runs one method end to end.
pub fn run_method(cfg: &SimConfig, method: EmsMethod) -> MethodRun {
    let forecast = train_forecasters(cfg, method);
    let ems = run_ems(cfg, method, &forecast);
    MethodRun {
        method: method.name().to_string(),
        forecast_train_wall_s: forecast.train_wall_s,
        forecast_comm_s: forecast.comm_s,
        forecast_bytes: forecast.comm_bytes,
        forecast_logical_bytes: forecast.comm_logical_bytes,
        ems,
    }
}

/// Runs one method and also returns the trained forecasters (for
/// experiments that need to evaluate forecast quality on the same run).
pub fn run_method_with_forecast(cfg: &SimConfig, method: EmsMethod) -> (MethodRun, ForecastPhase) {
    let forecast = train_forecasters(cfg, method);
    let ems = run_ems(cfg, method, &forecast);
    (
        MethodRun {
            method: method.name().to_string(),
            forecast_train_wall_s: forecast.train_wall_s,
            forecast_comm_s: forecast.comm_s,
            forecast_bytes: forecast.comm_bytes,
            forecast_logical_bytes: forecast.comm_logical_bytes,
            ems,
        },
        forecast,
    )
}

/// Runs one method with the configured [`CheckpointPolicy`]: if the
/// checkpoint directory already holds a snapshot of this exact run
/// (same config fingerprint, same method), execution resumes from it;
/// otherwise the run starts from scratch. Snapshots are written at the
/// configured day cadence. With checkpointing disabled this is
/// equivalent to [`run_method`].
///
/// [`CheckpointPolicy`]: crate::config::CheckpointPolicy
pub fn run_method_resumable(
    cfg: &SimConfig,
    method: EmsMethod,
) -> Result<ResumableRun, StoreError> {
    cfg.validate();
    let store = open_store(cfg)?;
    let snap = match &store {
        Some(s) => match s.latest()? {
            Some(path) => Some(CheckpointStore::load(path)?),
            None => None,
        },
        None => None,
    };
    drive(cfg, method, store.as_ref(), snap)
}

/// Like [`run_method_resumable`], but resumes from an explicit
/// snapshot file instead of the newest one in the checkpoint
/// directory.
pub fn run_method_resume_from(
    cfg: &SimConfig,
    method: EmsMethod,
    snapshot: impl AsRef<Path>,
) -> Result<ResumableRun, StoreError> {
    cfg.validate();
    let store = open_store(cfg)?;
    let snap = CheckpointStore::load(snapshot)?;
    drive(cfg, method, store.as_ref(), Some(snap))
}

fn open_store(cfg: &SimConfig) -> Result<Option<CheckpointStore>, StoreError> {
    match &cfg.checkpoint.dir {
        Some(dir) => Ok(Some(CheckpointStore::open(dir, cfg.checkpoint.keep_last)?)),
        None => Ok(None),
    }
}

/// The checkpointed execution loop shared by both resume entry points.
fn drive(
    cfg: &SimConfig,
    method: EmsMethod,
    store: Option<&CheckpointStore>,
    snap: Option<RunSnapshot>,
) -> Result<ResumableRun, StoreError> {
    let started = Instant::now();
    let (mut state, forecast, forecast_state, resumed_from_day) = match snap {
        Some(snap) => {
            let expected = cfg.run_hash();
            if snap.meta.config_hash != expected {
                return Err(StoreError::ConfigMismatch {
                    expected,
                    found: snap.meta.config_hash,
                });
            }
            if snap.meta.method != method.name() {
                return Err(StoreError::MethodMismatch {
                    expected: method.name().to_string(),
                    found: snap.meta.method.clone(),
                });
            }
            let forecast = ForecastPhase::from_state(cfg, &snap.forecast)?;
            let resumed_from_day = Some(snap.meta.next_day);
            let state = EmsState::from_snapshot(cfg, &snap)?;
            (state, forecast, snap.forecast, resumed_from_day)
        }
        None => {
            let forecast = train_forecasters(cfg, method);
            let forecast_state = forecast.export_state();
            (EmsState::fresh(cfg), forecast, forecast_state, None)
        }
    };

    // Divergence supervision keeps the last known-good snapshot in
    // memory (seeded with the day-zero / resume state so a rollback
    // target always exists) and, when a day's fleet mean loss explodes,
    // rewinds to it and re-runs the day with training frozen. The
    // frozen re-run takes no gradient steps, so it cannot re-diverge.
    // `rollbacks` rides the snapshot's health section, so a resumed run
    // replays the exact same verdicts and recovery count.
    let supervised = cfg.supervision.is_active();
    let mut last_good = supervised.then(|| state.to_snapshot(cfg, method, forecast_state.clone()));

    let every = cfg.checkpoint.every_days.max(1);
    while !state.done(cfg) {
        state.advance_day(cfg, method, &forecast);
        if supervised && state.last_day_diverged(cfg) {
            let rolled_back = state.rollbacks + 1;
            let good = last_good.as_ref().expect("supervision seeds last_good");
            state = EmsState::from_snapshot(cfg, good)?;
            state.rollbacks = rolled_back;
            state.advance_day_frozen(cfg, method, &forecast);
        }
        if let Some(good) = last_good.as_mut() {
            *good = state.to_snapshot(cfg, method, forecast_state.clone());
        }
        let completed = state.next_day - cfg.eval_start_day;
        if let Some(store) = store {
            if completed.is_multiple_of(every) || state.done(cfg) {
                // `last_good` was refreshed from the current state just
                // above, so reuse it rather than snapshotting twice.
                match last_good.as_ref() {
                    Some(good) => store.save(good)?,
                    None => store.save(&state.to_snapshot(cfg, method, forecast_state.clone()))?,
                };
            }
        }
        // Crash-simulation hook: die exactly as SIGKILL would, after
        // the checkpoint hook for the day has run.
        if cfg.checkpoint.abort_after_days == Some(completed) && !state.done(cfg) {
            std::process::abort();
        }
    }

    let ems = state.into_phase(cfg, started.elapsed().as_secs_f64());
    Ok(ResumableRun {
        run: MethodRun {
            method: method.name().to_string(),
            forecast_train_wall_s: forecast.train_wall_s,
            forecast_comm_s: forecast.comm_s,
            forecast_bytes: forecast.comm_bytes,
            forecast_logical_bytes: forecast.comm_logical_bytes,
            ems,
        },
        resumed_from_day,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_completes_for_every_method() {
        let cfg = SimConfig::tiny(7);
        for method in EmsMethod::ALL {
            let run = run_method(&cfg, method);
            assert!(run.ems.account.minutes > 0, "{method} did nothing");
            assert!(run.total_overhead_s() > 0.0);
            let f = run.converged_saved_fraction();
            assert!((0.0..=1.0).contains(&f), "{method} fraction {f}");
        }
    }

    #[test]
    fn days_to_converge_is_consistent() {
        let cfg = SimConfig::tiny(8);
        let run = run_method(&cfg, EmsMethod::Pfdrl);
        if let Some(d) = run.days_to_converge(0.8) {
            assert!(d < run.ems.daily_saved_fraction.len());
        }
    }
}
