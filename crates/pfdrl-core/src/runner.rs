//! End-to-end pipeline runner: forecaster training followed by the EMS
//! phase, with cost accounting for the time-overhead figures.

use crate::config::SimConfig;
use crate::ems::{run_ems, EmsPhase};
use crate::forecast::{train_forecasters, ForecastPhase};
use crate::method::EmsMethod;
use serde::{Deserialize, Serialize};

/// A full run of one comparison method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodRun {
    pub method: String,
    /// Forecaster-training wall-clock seconds.
    pub forecast_train_wall_s: f64,
    /// Forecaster-training simulated communication seconds.
    pub forecast_comm_s: f64,
    /// Forecaster-training bytes on the wire.
    pub forecast_bytes: u64,
    /// The EMS phase results.
    pub ems: EmsPhase,
}

impl MethodRun {
    /// Total time overhead (compute + simulated communication), seconds —
    /// the quantity compared in Figure 14.
    pub fn total_overhead_s(&self) -> f64 {
        self.forecast_train_wall_s + self.forecast_comm_s + self.ems.train_wall_s + self.ems.comm_s
    }

    /// Mean saved-standby fraction over the last third of eval days
    /// (converged performance).
    pub fn converged_saved_fraction(&self) -> f64 {
        let days = &self.ems.daily_saved_fraction;
        let tail = days.len().div_ceil(3);
        let slice = &days[days.len() - tail..];
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// First eval day (0-based) on which the saved fraction reached
    /// `threshold` × the converged level — the Figure 9 convergence-speed
    /// measure. `None` if never reached.
    pub fn days_to_converge(&self, threshold: f64) -> Option<usize> {
        let target = threshold * self.converged_saved_fraction();
        self.ems
            .daily_saved_fraction
            .iter()
            .position(|&f| f >= target)
    }
}

/// Runs one method end to end.
pub fn run_method(cfg: &SimConfig, method: EmsMethod) -> MethodRun {
    let forecast = train_forecasters(cfg, method);
    let ems = run_ems(cfg, method, &forecast);
    MethodRun {
        method: method.name().to_string(),
        forecast_train_wall_s: forecast.train_wall_s,
        forecast_comm_s: forecast.comm_s,
        forecast_bytes: forecast.comm_bytes,
        ems,
    }
}

/// Runs one method and also returns the trained forecasters (for
/// experiments that need to evaluate forecast quality on the same run).
pub fn run_method_with_forecast(cfg: &SimConfig, method: EmsMethod) -> (MethodRun, ForecastPhase) {
    let forecast = train_forecasters(cfg, method);
    let ems = run_ems(cfg, method, &forecast);
    (
        MethodRun {
            method: method.name().to_string(),
            forecast_train_wall_s: forecast.train_wall_s,
            forecast_comm_s: forecast.comm_s,
            forecast_bytes: forecast.comm_bytes,
            ems,
        },
        forecast,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pipeline_completes_for_every_method() {
        let cfg = SimConfig::tiny(7);
        for method in EmsMethod::ALL {
            let run = run_method(&cfg, method);
            assert!(run.ems.account.minutes > 0, "{method} did nothing");
            assert!(run.total_overhead_s() > 0.0);
            let f = run.converged_saved_fraction();
            assert!((0.0..=1.0).contains(&f), "{method} fraction {f}");
        }
    }

    #[test]
    fn days_to_converge_is_consistent() {
        let cfg = SimConfig::tiny(8);
        let run = run_method(&cfg, EmsMethod::Pfdrl);
        if let Some(d) = run.days_to_converge(0.8) {
            assert!(d < run.ems.daily_saved_fraction.len());
        }
    }
}
