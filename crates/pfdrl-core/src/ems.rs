//! Phase 2 of every pipeline: running the DRL energy-management system
//! over the evaluation days, with the method's DRL federation mode
//! (Table 2, "EMS" column).
//!
//! * **Local / Cloud / FL** — every home trains its DQNs alone.
//! * **FRL** — full Q-networks are FedAvg-ed through the cloud every γ
//!   hours.
//! * **PFDRL** — only the first α layers are broadcast over the LAN every
//!   γ hours; the remaining layers stay personal (Eqs. 7–8).
//!
//! Each simulated day is split into γ-aligned segments; all residences
//! advance their episodes through a segment in parallel (rayon), then the
//! federation step runs at the boundary.

use crate::config::{HealthPolicy, SimConfig};
use crate::forecast::ForecastPhase;
use crate::method::EmsMethod;
use pfdrl_data::{
    impute_forward_fill, Archetype, DayTrace, HouseholdSpec, TraceGenerator, MINUTES_PER_DAY,
    WATT_CEILING,
};
use pfdrl_drl::{DqnAgent, DqnConfig, Transition};
use pfdrl_env::{DeviceEnv, EnergyAccount, EnvConfig};
use pfdrl_fl::{
    aggregate, AggregationMode, BroadcastBus, CloudAggregator, DflRound, HierParams,
    HierarchicalRound, LatencyModel, MergePolicy, RoundParams, ShardAssignment, ShardPlan,
};
use pfdrl_forecast::PredictWorkspace;
use pfdrl_nn::{Layered, Matrix};
use pfdrl_store::{
    ForecastState, HealthState as HealthSection, HomeHealthRecord, MetricsState, RunSnapshot,
    SnapshotMeta, StoreError, TransportState,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How a method federates its DRL agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrlFederation {
    /// No sharing (Local, Cloud, FL).
    None,
    /// Full-model FedAvg through the cloud (FRL).
    CloudFull,
    /// α base layers over the LAN (PFDRL).
    LanAlpha(usize),
}

impl EmsMethod {
    /// The DRL federation mode of this method.
    pub fn drl_federation(self, alpha: usize) -> DrlFederation {
        match self {
            EmsMethod::Local | EmsMethod::Cloud | EmsMethod::Fl => DrlFederation::None,
            EmsMethod::Frl => DrlFederation::CloudFull,
            EmsMethod::Pfdrl => DrlFederation::LanAlpha(alpha),
        }
    }
}

/// Health of one home's telemetry stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// Readings are clean (or repaired below the dirty threshold).
    Healthy,
    /// Recent day(s) needed above-threshold imputation; still uploads.
    Degraded,
    /// Withheld from federation uploads until re-admitted.
    Quarantined,
}

/// Per-home telemetry health machine: Healthy → Degraded on a dirty
/// day, Degraded → Quarantined after `quarantine_after_days`
/// consecutive dirty days, Quarantined → Healthy again only after
/// `readmit_after_days` consecutive clean days (hysteresis, so a home
/// flapping between clean and dirty stays out of the federation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HomeHealth {
    /// Current state.
    pub state: HealthState,
    /// Consecutive dirty days (escalation counter).
    pub dirty_days: u32,
    /// Consecutive clean days while quarantined (re-admission counter).
    pub clean_days: u32,
}

impl Default for HomeHealth {
    fn default() -> Self {
        HomeHealth {
            state: HealthState::Healthy,
            dirty_days: 0,
            clean_days: 0,
        }
    }
}

impl HomeHealth {
    /// Whether this home is withheld from federation uploads.
    pub fn quarantined(&self) -> bool {
        self.state == HealthState::Quarantined
    }

    /// Feeds one completed day's imputation verdict; returns whether
    /// the state changed.
    pub fn observe_day(&mut self, dirty: bool, policy: &HealthPolicy) -> bool {
        let before = self.state;
        if dirty {
            self.clean_days = 0;
            if self.state != HealthState::Quarantined {
                self.dirty_days += 1;
                self.state = if self.dirty_days >= policy.quarantine_after_days {
                    HealthState::Quarantined
                } else {
                    HealthState::Degraded
                };
            }
        } else {
            match self.state {
                HealthState::Healthy => {}
                HealthState::Degraded => {
                    self.state = HealthState::Healthy;
                    self.dirty_days = 0;
                }
                HealthState::Quarantined => {
                    self.clean_days += 1;
                    if self.clean_days >= policy.readmit_after_days {
                        self.state = HealthState::Healthy;
                        self.dirty_days = 0;
                        self.clean_days = 0;
                    }
                }
            }
        }
        self.state != before
    }
}

/// Result of the EMS phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmsPhase {
    /// Aggregate account over all homes, devices and days.
    pub account: EnergyAccount,
    /// Per-eval-day saved-standby fraction across the neighbourhood
    /// (the Figure 9 convergence curve).
    pub daily_saved_fraction: Vec<f64>,
    /// Per-eval-day saved energy per client, kWh (Figure 9 left axis).
    pub daily_saved_kwh_per_client: Vec<f64>,
    /// Saved energy per client by hour of day, kWh (Figure 11).
    pub hourly_saved_kwh_per_client: Vec<f64>,
    /// Available standby energy per client by hour of day, kWh.
    pub hourly_standby_kwh_per_client: Vec<f64>,
    /// Per-home saved fraction over the last third of eval days
    /// (Figure 12 error bars).
    pub per_home_saved_fraction: Vec<f64>,
    /// Per-home saved energy over the last third of eval days, kWh.
    pub per_home_saved_kwh: Vec<f64>,
    /// Wall-clock compute time, seconds.
    pub train_wall_s: f64,
    /// Simulated communication time, seconds.
    pub comm_s: f64,
    /// Bytes moved over the simulated network (wire size, i.e. after
    /// any payload compression).
    pub comm_bytes: u64,
    /// Bytes the same traffic would occupy uncompressed (8 B/param).
    /// Equal to `comm_bytes` under the default `Raw` codec.
    #[serde(default)]
    pub comm_logical_bytes: u64,
    /// Device-minutes repaired by forward-fill imputation.
    #[serde(default)]
    pub imputed_minutes: u64,
    /// Health state transitions across all homes and days.
    #[serde(default)]
    pub health_transitions: u64,
    /// Home-days spent quarantined (withheld from uploads).
    #[serde(default)]
    pub quarantined_home_days: u64,
    /// Divergence-supervisor rollbacks to the last good checkpoint.
    #[serde(default)]
    pub rollbacks: u64,
    /// Per-eval-day fleet mean train loss (supervision input). Only
    /// populated when sensor faults or supervision are active — it is
    /// not part of the snapshot otherwise, so exposing it would break
    /// resumed-vs-uninterrupted equality on plain runs.
    #[serde(default)]
    pub daily_mean_loss: Vec<f64>,
}

/// Per-minute prediction of one device-day, produced by feeding the
/// forecaster windows of *real* readings that end `horizon` minutes
/// before each target minute.
///
/// Allocating reference implementation; the day pipeline runs
/// [`predict_day_into`], which is pinned bitwise-identical to this.
pub fn predict_day(
    cfg: &SimConfig,
    forecaster: &dyn pfdrl_forecast::Forecaster,
    prev_day: &DayTrace,
    today: &DayTrace,
    scale: f64,
) -> Vec<f64> {
    let window = cfg.window;
    let horizon = cfg.horizon;
    let transform = cfg.transform;
    let watts_at = |idx: usize| {
        if idx < MINUTES_PER_DAY {
            prev_day.watts[idx]
        } else {
            today.watts[idx - MINUTES_PER_DAY]
        }
    };
    let mut inputs = Vec::with_capacity(MINUTES_PER_DAY);
    for t in 0..MINUTES_PER_DAY {
        let end = MINUTES_PER_DAY + t - horizon; // exclusive window end
        let startw = end - window;
        let mut feat = Vec::with_capacity(window + 2);
        for idx in startw..end {
            feat.push(transform.encode(watts_at(idx) / scale));
        }
        let angle = 2.0 * std::f64::consts::PI * t as f64 / MINUTES_PER_DAY as f64;
        feat.push(angle.sin());
        feat.push(angle.cos());
        inputs.push(feat);
    }
    forecaster
        .predict(&inputs)
        .iter()
        .map(|p| (transform.decode(*p) * scale).max(0.0))
        .collect()
}

/// Reusable buffers for [`predict_day_into`]: the streaming
/// featurizer's encoded-series span, the flat input matrix handed to
/// the forecaster, the raw prediction vector, and the forecaster's own
/// inference scratch.
#[derive(Debug, Default)]
pub struct PredictDayWorkspace {
    encoded: Vec<f64>,
    inputs: Matrix,
    raw: Vec<f64>,
    fws: PredictWorkspace,
}

/// Allocation-free [`predict_day`] writing into `out`.
///
/// Consecutive minutes share `window - 1` of their window elements, so
/// instead of encoding `window` values per minute this encodes the
/// whole span the windows touch exactly once and each input row copies
/// its slice of the encoded buffer. `transform.encode` is a pure
/// per-element function and the row contents, feature order and decode
/// step are unchanged, so the output is bit-identical to
/// [`predict_day`].
pub fn predict_day_into(
    cfg: &SimConfig,
    forecaster: &dyn pfdrl_forecast::Forecaster,
    prev_day: &DayTrace,
    today: &DayTrace,
    scale: f64,
    ws: &mut PredictDayWorkspace,
    out: &mut Vec<f64>,
) {
    let window = cfg.window;
    let horizon = cfg.horizon;
    let transform = cfg.transform;
    // Minute t's window covers concatenated-series indices
    // [1440 + t - horizon - window, 1440 + t - horizon); over all t the
    // used span is `window + 1439` elements starting at
    // `1440 - horizon - window`.
    let start0 = MINUTES_PER_DAY - horizon - window;
    let span = window + MINUTES_PER_DAY - 1;
    ws.encoded.clear();
    ws.encoded.reserve(span);
    for idx in start0..start0 + span {
        let w = if idx < MINUTES_PER_DAY {
            prev_day.watts[idx]
        } else {
            today.watts[idx - MINUTES_PER_DAY]
        };
        ws.encoded.push(transform.encode(w / scale));
    }
    ws.inputs.resize(MINUTES_PER_DAY, window + 2);
    for t in 0..MINUTES_PER_DAY {
        let row = ws.inputs.row_mut(t);
        row[..window].copy_from_slice(&ws.encoded[t..t + window]);
        let angle = 2.0 * std::f64::consts::PI * t as f64 / MINUTES_PER_DAY as f64;
        row[window] = angle.sin();
        row[window + 1] = angle.cos();
    }
    forecaster.predict_into(&ws.inputs, &mut ws.fws, &mut ws.raw);
    out.clear();
    out.extend(
        ws.raw
            .iter()
            .map(|p| (transform.decode(*p) * scale).max(0.0)),
    );
}

/// Predictions for the partial minute range `[r0, r1)` of a day,
/// appended to `out` (which must already hold rows `[0, r0)`).
///
/// The serve loop closes a day chunk by chunk, so it cannot featurize
/// all 1440 rows at once — but every forecaster's `predict_into`
/// treats each input row as an independent window, so predicting the
/// rows of a sub-span produces bit-identical values to slicing a
/// full-day [`predict_day_into`] (pinned by a test below). Row `t`'s
/// window ends at concatenated index `1440 + t - horizon`, so it only
/// needs `today_watts` up to index `t - horizon - 1 < r1 - 1`:
/// yesterday's full day plus the repaired prefix of today suffice.
#[allow(clippy::too_many_arguments)]
pub fn predict_span_into(
    cfg: &SimConfig,
    forecaster: &dyn pfdrl_forecast::Forecaster,
    prev_watts: &[f64],
    today_watts: &[f64],
    scale: f64,
    r0: usize,
    r1: usize,
    ws: &mut PredictDayWorkspace,
    out: &mut Vec<f64>,
) {
    debug_assert!(r0 <= r1 && r1 <= MINUTES_PER_DAY && out.len() == r0);
    if r0 == r1 {
        return;
    }
    let window = cfg.window;
    let horizon = cfg.horizon;
    let transform = cfg.transform;
    // Rows [r0, r1) touch concatenated-series indices
    // [start0 + r0, start0 + r1 - 1 + window).
    let start0 = MINUTES_PER_DAY - horizon - window;
    let span = (r1 - r0) + window - 1;
    ws.encoded.clear();
    ws.encoded.reserve(span);
    for idx in start0 + r0..start0 + r0 + span {
        let w = if idx < MINUTES_PER_DAY {
            prev_watts[idx]
        } else {
            today_watts[idx - MINUTES_PER_DAY]
        };
        ws.encoded.push(transform.encode(w / scale));
    }
    ws.inputs.resize(r1 - r0, window + 2);
    for (i, t) in (r0..r1).enumerate() {
        let row = ws.inputs.row_mut(i);
        row[..window].copy_from_slice(&ws.encoded[i..i + window]);
        let angle = 2.0 * std::f64::consts::PI * t as f64 / MINUTES_PER_DAY as f64;
        row[window] = angle.sin();
        row[window + 1] = angle.cos();
    }
    forecaster.predict_into(&ws.inputs, &mut ws.fws, &mut ws.raw);
    out.extend(
        ws.raw
            .iter()
            .map(|p| (transform.decode(*p) * scale).max(0.0)),
    );
}

/// Recycled buffers for one device's day: the trace pair (today's
/// trace becomes tomorrow's `prev` via a swap), the decoded
/// predictions, the persistent environment reloaded day over day with
/// [`DeviceEnv::load_day`], and the live episode's state
/// double-buffer.
#[derive(Default)]
struct DeviceDay {
    prev: DayTrace,
    today: DayTrace,
    /// Day index `today` currently holds; drives the prev/today swap.
    loaded_day: Option<u64>,
    pred: Vec<f64>,
    env: Option<DeviceEnv>,
    /// Current episode state `s_t`.
    cur: Vec<f64>,
    /// Scratch for `s_{t+1}`; swapped into `cur` after each step.
    next: Vec<f64>,
}

/// One home's recycled day-pipeline buffers.
#[derive(Default)]
struct HomeWorkspace {
    /// Static household description, built once (it is a pure function
    /// of the generator config).
    hh: Option<HouseholdSpec>,
    devices: Vec<DeviceDay>,
    /// Recycled state-vector heap buffers; refilled by replay-ring
    /// evictions, drained to build transitions.
    pool: Vec<Vec<f64>>,
    pws: PredictDayWorkspace,
    /// Per-segment hour-of-day accumulators written by [`run_segment`].
    saved: [f64; 24],
    standby: [f64; 24],
    /// Device-minutes imputed while loading the current day's traces.
    imputed_minutes: u32,
    /// Per-day train-loss accumulators (zeroed at day load, summed
    /// across segments, folded into the fleet mean at day end).
    loss_sum: f64,
    loss_steps: u64,
    nonfinite_losses: u32,
}

/// Per-home day-pipeline workspaces. Pure transient scratch, like
/// [`EmsState::fed_engine`]: it holds no cross-day state an
/// uninterrupted run depends on (traces are regenerated bit-identically
/// from the seed when empty), so it is rebuilt fresh on resume and
/// never snapshotted.
#[derive(Default)]
pub struct DayWorkspace {
    homes: Vec<HomeWorkspace>,
}

impl DayWorkspace {
    fn ensure_shape(&mut self, n: usize, d: usize) {
        self.homes.resize_with(n, HomeWorkspace::default);
        for hw in &mut self.homes {
            hw.devices.resize_with(d, DeviceDay::default);
        }
    }
}

/// The cross-day state of an EMS run — exactly what must survive a
/// crash for the resumed run to be bit-identical to the uninterrupted
/// one. At a day boundary no episode is live, so this is the complete
/// persistent state: agents (networks, optimizers, replay, RNG
/// streams), federation transports (statistics plus any
/// straggler-parked updates from an active fault plan), the federation
/// round counter, and the metric accumulators.
///
/// Public so benchmarks and allocation tests can drive the run one
/// [`EmsState::advance_day`] at a time; normal callers use
/// [`run_ems`] or the resumable runners.
pub struct EmsState {
    pub agents: Vec<Vec<DqnAgent>>,
    pub bus: BroadcastBus,
    pub cloud: CloudAggregator,
    /// Reusable federation-round engine (scratch buffers + update
    /// pool). Pure transient workspace — it holds no cross-round
    /// state, so it is rebuilt fresh on resume and never snapshotted.
    pub fed_engine: DflRound,
    /// The two-level round engine, present exactly when the config
    /// selects [`AggregationMode::Hierarchical`]. Unlike `fed_engine`
    /// it owns the per-shard buses (stats, parked stragglers) and
    /// counters, so it rides the snapshot's optional SHARD section.
    pub hier: Option<HierarchicalRound>,
    /// Reusable per-home day-pipeline buffers (traces, predictions,
    /// environments, episode states). Pure transient workspace — like
    /// `fed_engine`, rebuilt fresh on resume and never snapshotted.
    pub day_ws: DayWorkspace,
    pub fed_round: u64,
    /// Next evaluation day to execute (absolute day index).
    pub next_day: u64,
    pub total: EnergyAccount,
    pub daily_saved_fraction: Vec<f64>,
    pub daily_saved_kwh_per_client: Vec<f64>,
    pub hourly_saved: [f64; 24],
    pub hourly_standby: [f64; 24],
    pub per_home_late: Vec<EnergyAccount>,
    /// Per-home telemetry health machines.
    pub health: Vec<HomeHealth>,
    /// Total device-minutes repaired by imputation.
    pub imputed_minutes: u64,
    /// Total health state transitions.
    pub health_transitions: u64,
    /// Home-days spent quarantined.
    pub quarantined_home_days: u64,
    /// Rollbacks the divergence supervisor performed (owned here so it
    /// rides the snapshot; incremented by the resumable runner).
    pub rollbacks: u64,
    /// Per-completed-day fleet mean train loss; NaN marks a day that
    /// produced any non-finite batch loss. The supervision detector is
    /// a pure function of this history.
    pub daily_mean_loss: Vec<f64>,
    /// Reusable upload-participation mask (transient scratch; rebuilt
    /// from `health` every day, never snapshotted).
    participants: Vec<bool>,
}

impl EmsState {
    /// Day-zero state with freshly seeded agents and empty transports.
    pub fn fresh(cfg: &SimConfig) -> Self {
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let state_dim = env_cfg.state_dim();
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();

        // One DQN per home-device pair.
        let agents: Vec<Vec<DqnAgent>> = (0..n)
            .map(|home| {
                (0..d)
                    .map(|device| {
                        DqnAgent::new(
                            state_dim,
                            DqnConfig {
                                seed: Self::agent_seed(cfg, home, device),
                                ..cfg.dqn.clone()
                            },
                        )
                    })
                    .collect()
            })
            .collect();

        EmsState {
            agents,
            // Federation transports, routed through the configured fault
            // plan (inert when cfg.fault is fault-free).
            bus: BroadcastBus::with_codec(n, LatencyModel::lan(), &cfg.fault, cfg.compression),
            cloud: CloudAggregator::with_codec(LatencyModel::cloud(), &cfg.fault, cfg.compression),
            fed_engine: DflRound::new(),
            hier: Self::build_hier(cfg),
            day_ws: DayWorkspace::default(),
            fed_round: 0,
            next_day: cfg.eval_start_day,
            total: EnergyAccount::new(),
            daily_saved_fraction: Vec::with_capacity(cfg.eval_days as usize),
            daily_saved_kwh_per_client: Vec::with_capacity(cfg.eval_days as usize),
            hourly_saved: [0.0f64; 24],
            hourly_standby: [0.0f64; 24],
            per_home_late: vec![EnergyAccount::new(); n],
            health: vec![HomeHealth::default(); n],
            imputed_minutes: 0,
            health_transitions: 0,
            quarantined_home_days: 0,
            rollbacks: 0,
            daily_mean_loss: Vec::with_capacity(cfg.eval_days as usize),
            participants: Vec::with_capacity(n),
        }
    }

    /// Builds the hierarchical round engine when the config selects the
    /// two-level topology. The shard plan is a pure function of the
    /// config: round-robin by home index, or grouped by the occupant
    /// archetype pfdrl-data deterministically assigns each household —
    /// so a resumed run always rebuilds the identical partition.
    pub(crate) fn build_hier(cfg: &SimConfig) -> Option<HierarchicalRound> {
        let AggregationMode::Hierarchical { shards, assignment } = cfg.aggregation else {
            return None;
        };
        let n = cfg.n_residences;
        let plan = match assignment {
            ShardAssignment::RoundRobin => ShardPlan::round_robin(n, shards),
            ShardAssignment::ArchetypeMix => {
                let keys: Vec<u64> = (0..n as u64).map(|h| Archetype::assign(h) as u64).collect();
                ShardPlan::by_keys(n, shards, &keys)
            }
        };
        Some(HierarchicalRound::with_codec(
            plan,
            LatencyModel::lan(),
            &cfg.fault,
            cfg.compression,
        ))
    }

    fn agent_seed(cfg: &SimConfig, home: usize, device: usize) -> u64 {
        cfg.seed
            .wrapping_mul(0xC2B2_AE35)
            .wrapping_add((home as u64) << 13)
            .wrapping_add(device as u64)
    }

    /// Whether every evaluation day has been executed.
    pub fn done(&self, cfg: &SimConfig) -> bool {
        self.next_day >= cfg.eval_start_day + cfg.eval_days
    }

    /// Executes one evaluation day (`self.next_day`): builds the day's
    /// environments, walks the γ-aligned segments with federation at
    /// each boundary, and folds the day's accounts into the
    /// accumulators.
    pub fn advance_day(&mut self, cfg: &SimConfig, method: EmsMethod, forecast: &ForecastPhase) {
        self.advance_day_with(cfg, method, forecast, true);
    }

    /// [`EmsState::advance_day`] with training suppressed: agents act
    /// (greedily exploring as usual, consuming the same action RNG) but
    /// take no gradient steps. The divergence supervisor re-runs a
    /// rolled-back day through this, so the replacement day cannot
    /// re-diverge and the recovery is deterministic.
    pub fn advance_day_frozen(
        &mut self,
        cfg: &SimConfig,
        method: EmsMethod,
        forecast: &ForecastPhase,
    ) {
        self.advance_day_with(cfg, method, forecast, false);
    }

    fn advance_day_with(
        &mut self,
        cfg: &SimConfig,
        method: EmsMethod,
        forecast: &ForecastPhase,
        train: bool,
    ) {
        let day = self.next_day;
        let gen = TraceGenerator::new(cfg.generator());
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();
        let federation = method.drl_federation(cfg.alpha);
        let policy = cfg.fault.merge_policy();
        let gamma_minutes = ((cfg.gamma_hours * 60.0).round() as usize).max(1);
        let late_start = cfg.eval_start_day + cfg.eval_days - cfg.eval_days.div_ceil(3);

        // Sensor-fault plan: pure hash decisions per (home, device, day,
        // minute), so the corrupted stream is identical whether a trace
        // arrives via the prev/today swap or is regenerated after a
        // resume. Inactive plans skip both passes entirely, keeping the
        // fault-free pipeline bit-identical byte for byte.
        let plan = cfg.sensor_fault.plan();
        let faults_on = cfg.sensor_fault.is_active();

        // Build the day's envs (predictions + ground truth), per home,
        // into the recycled workspaces.
        self.day_ws.ensure_shape(n, d);
        self.day_ws
            .homes
            .par_iter_mut()
            .enumerate()
            .for_each(|(home, hw)| {
                let HomeWorkspace {
                    hh,
                    devices,
                    pws,
                    imputed_minutes,
                    loss_sum,
                    loss_steps,
                    nonfinite_losses,
                    ..
                } = hw;
                *imputed_minutes = 0;
                *loss_sum = 0.0;
                *loss_steps = 0;
                *nonfinite_losses = 0;
                let hh = hh.get_or_insert_with(|| gen.household(home as u64));
                for (device, dd) in devices.iter_mut().enumerate() {
                    let spec = &hh.devices[device];
                    if !spec.controllable {
                        continue;
                    }
                    if dd.loaded_day == Some(day - 1) {
                        std::mem::swap(&mut dd.prev, &mut dd.today);
                    } else {
                        gen.day_trace_into(hh, device, day - 1, &mut dd.prev);
                        if faults_on {
                            // Reproduce yesterday's corruption + repair
                            // so the regenerated prev matches what the
                            // swap path would carry. Yesterday's repairs
                            // were already counted when yesterday ran.
                            plan.corrupt_day(
                                home as u64,
                                device as u64,
                                day - 1,
                                &mut dd.prev.watts,
                            );
                            impute_forward_fill(&mut dd.prev.watts, WATT_CEILING, 0.0);
                        }
                    }
                    gen.day_trace_into(hh, device, day, &mut dd.today);
                    if faults_on {
                        plan.corrupt_day(home as u64, device as u64, day, &mut dd.today.watts);
                        *imputed_minutes +=
                            impute_forward_fill(&mut dd.today.watts, WATT_CEILING, 0.0);
                    }
                    dd.loaded_day = Some(day);
                    predict_day_into(
                        cfg,
                        forecast.models[home][device].as_ref(),
                        &dd.prev,
                        &dd.today,
                        spec.on_watts,
                        pws,
                        &mut dd.pred,
                    );
                    match &mut dd.env {
                        Some(env) => env.load_day(
                            spec.clone(),
                            &dd.pred,
                            &dd.today.watts,
                            &dd.today.modes,
                            env_cfg,
                        ),
                        None => {
                            dd.env = Some(DeviceEnv::new(
                                spec.clone(),
                                dd.pred.clone(),
                                dd.today.watts.clone(),
                                dd.today.modes.clone(),
                                env_cfg,
                            ));
                        }
                    }
                    dd.env
                        .as_mut()
                        .expect("just loaded")
                        .reset_into(&mut dd.cur);
                }
            });

        // Fold the day's imputation verdicts through the per-home
        // health machines (sequential, in home order). Today's dirt
        // decides today's federation participation: a home whose stream
        // needed heavy repair this morning does not upload tonight.
        let mut any_quarantined = false;
        if faults_on {
            for (home, hw) in self.day_ws.homes.iter().enumerate() {
                self.imputed_minutes += hw.imputed_minutes as u64;
                let dirty = hw.imputed_minutes >= cfg.health.dirty_minutes;
                if self.health[home].observe_day(dirty, &cfg.health) {
                    self.health_transitions += 1;
                }
                if self.health[home].quarantined() {
                    self.quarantined_home_days += 1;
                    any_quarantined = true;
                }
            }
        }
        self.participants.clear();
        if any_quarantined {
            self.participants
                .extend(self.health.iter().map(|h| !h.quarantined()));
        }
        let participants: Option<&[bool]> = if any_quarantined {
            Some(&self.participants)
        } else {
            None
        };

        // Walk the day in γ-aligned segments.
        let mut day_account = EnergyAccount::new();
        let day_minute0 = (day - cfg.eval_start_day) as usize * MINUTES_PER_DAY;
        let mut seg_start = 0usize;
        while seg_start < MINUTES_PER_DAY {
            let global = day_minute0 + seg_start;
            let next_boundary = ((global / gamma_minutes) + 1) * gamma_minutes;
            let seg_end = (next_boundary - day_minute0).min(MINUTES_PER_DAY);

            // All homes advance through the segment in parallel, each
            // accumulating into its own per-home hour buckets; the fold
            // below runs in home order, exactly as the sequential
            // reference did.
            self.day_ws
                .homes
                .par_iter_mut()
                .zip(self.agents.par_iter_mut())
                .for_each(|(hw, home_agents)| run_segment(cfg, hw, home_agents, seg_end, train));
            for hw in &self.day_ws.homes {
                for h in 0..24 {
                    self.hourly_saved[h] += hw.saved[h];
                    self.hourly_standby[h] += hw.standby[h];
                }
            }

            // Federation at the boundary (if the day is not over early).
            if seg_end < MINUTES_PER_DAY || next_boundary == day_minute0 + MINUTES_PER_DAY {
                self.fed_round += 1;
                federate(
                    &mut self.agents,
                    federation,
                    &self.bus,
                    &self.cloud,
                    self.fed_round,
                    &policy,
                    cfg.aggregation,
                    &mut self.fed_engine,
                    self.hier.as_mut(),
                    participants,
                );
            }
            seg_start = seg_end;
        }

        // Collect the day's accounts (each env's account was reset at
        // day load, so it holds exactly this day's figures).
        for (home, hw) in self.day_ws.homes.iter().enumerate() {
            for env in hw.devices.iter().filter_map(|dd| dd.env.as_ref()) {
                day_account.merge(env.account());
                if day >= late_start {
                    self.per_home_late[home].merge(env.account());
                }
            }
        }
        self.total.merge(&day_account);
        self.daily_saved_fraction
            .push(day_account.saved_fraction().unwrap_or(0.0));
        self.daily_saved_kwh_per_client
            .push(day_account.standby_saved_kwh / n as f64);

        // Fleet mean train loss for the day (home order, so the float
        // sum is deterministic). NaN flags a day with any non-finite
        // batch loss for the divergence supervisor.
        let mut loss_sum = 0.0f64;
        let mut loss_steps = 0u64;
        let mut nonfinite = 0u32;
        for hw in &self.day_ws.homes {
            loss_sum += hw.loss_sum;
            loss_steps += hw.loss_steps;
            nonfinite += hw.nonfinite_losses;
        }
        let mean_loss = if nonfinite > 0 {
            f64::NAN
        } else if loss_steps == 0 {
            0.0
        } else {
            loss_sum / loss_steps as f64
        };
        self.daily_mean_loss.push(mean_loss);
        self.next_day = day + 1;
    }

    /// Whether the just-completed day diverged under the configured
    /// supervision policy: its fleet mean loss is non-finite, or it
    /// exceeds `explode_factor` × the trailing-window mean. A pure
    /// function of snapshotted state, so a resumed run reaches the
    /// exact same verdicts as the uninterrupted one.
    pub fn last_day_diverged(&self, cfg: &SimConfig) -> bool {
        let sup = &cfg.supervision;
        if !sup.is_active() {
            return false;
        }
        let losses = &self.daily_mean_loss;
        let Some(&cur) = losses.last() else {
            return false;
        };
        if !cur.is_finite() {
            return true;
        }
        // Baseline on the finite, nonzero window entries (zero means a
        // day without gradient steps — warmup or a frozen re-run — and
        // carries no loss-scale information).
        let n = losses.len() - 1;
        let window = &losses[n.saturating_sub(sup.window_days as usize)..n];
        let mut sum = 0.0f64;
        let mut count = 0u32;
        for &v in window {
            if v.is_finite() && v > 0.0 {
                sum += v;
                count += 1;
            }
        }
        count > 0 && cur > sup.explode_factor * (sum / count as f64)
    }

    /// Folds the accumulated state into the phase result.
    pub fn into_phase(self, cfg: &SimConfig, train_wall_s: f64) -> EmsPhase {
        let n = cfg.n_residences;
        // Under Hierarchical the LAN traffic lives on the shard buses
        // (plus the synthetic aggregator links); the flat bus is idle.
        let (hier_bytes, hier_logical, hier_s) = self
            .hier
            .as_ref()
            .map(|h| {
                let s = h.total_stats();
                (s.bytes, s.logical_bytes, h.simulated_seconds())
            })
            .unwrap_or((0, 0, 0.0));
        let comm_bytes = self.bus.stats().bytes
            + hier_bytes
            + self.cloud.stats().upload_bytes
            + self.cloud.stats().download_bytes;
        // Downloads always travel raw (the server ships the dense
        // global model), so they count equally on both sides.
        let comm_logical_bytes = self.bus.stats().logical_bytes
            + hier_logical
            + self.cloud.stats().logical_upload_bytes
            + self.cloud.stats().download_bytes;
        let comm_s = self.bus.simulated_seconds() + hier_s + self.cloud.simulated_seconds();
        EmsPhase {
            account: self.total,
            daily_saved_fraction: self.daily_saved_fraction,
            daily_saved_kwh_per_client: self.daily_saved_kwh_per_client,
            hourly_saved_kwh_per_client: self.hourly_saved.iter().map(|v| v / n as f64).collect(),
            hourly_standby_kwh_per_client: self
                .hourly_standby
                .iter()
                .map(|v| v / n as f64)
                .collect(),
            per_home_saved_fraction: self
                .per_home_late
                .iter()
                .map(|a| a.saved_fraction().unwrap_or(0.0))
                .collect(),
            per_home_saved_kwh: self
                .per_home_late
                .iter()
                .map(|a| a.standby_saved_kwh)
                .collect(),
            train_wall_s,
            comm_s,
            comm_bytes,
            comm_logical_bytes,
            imputed_minutes: self.imputed_minutes,
            health_transitions: self.health_transitions,
            quarantined_home_days: self.quarantined_home_days,
            rollbacks: self.rollbacks,
            // Only expose the loss history when it is also snapshotted
            // (see the field doc on `EmsPhase::daily_mean_loss`).
            daily_mean_loss: if Self::health_active(cfg) {
                self.daily_mean_loss
            } else {
                Vec::new()
            },
        }
    }

    /// Whether any hostile-telemetry feature is on — and with it the
    /// snapshot's optional HEALTH section.
    fn health_active(cfg: &SimConfig) -> bool {
        cfg.sensor_fault.is_active() || cfg.supervision.is_active()
    }

    /// Exports the health machines + supervision counters as a snapshot
    /// HEALTH section. [`EmsState::to_snapshot`] emits this only when a
    /// hostile-telemetry feature is configured; the serve loop always
    /// runs the health machine and fills the section unconditionally.
    pub fn export_health(&self) -> HealthSection {
        HealthSection {
            per_home: self
                .health
                .iter()
                .map(|h| HomeHealthRecord {
                    state: match h.state {
                        HealthState::Healthy => 0,
                        HealthState::Degraded => 1,
                        HealthState::Quarantined => 2,
                    },
                    dirty_days: h.dirty_days,
                    clean_days: h.clean_days,
                })
                .collect(),
            imputed_minutes: self.imputed_minutes,
            health_transitions: self.health_transitions,
            quarantined_home_days: self.quarantined_home_days,
            rollbacks: self.rollbacks,
            daily_mean_loss: self.daily_mean_loss.clone(),
        }
    }

    /// One federation round outside the batch day loop, for callers
    /// that own the schedule (the serve loop fires this at simulated
    /// day boundaries). Quarantined homes are withheld from uploads
    /// exactly as in [`EmsState::advance_day`]; the round counter
    /// advances so bus/cloud arrival bookkeeping stays consistent.
    pub fn federate_now(&mut self, cfg: &SimConfig, method: EmsMethod) {
        let federation = method.drl_federation(cfg.alpha);
        if federation == DrlFederation::None {
            return;
        }
        let policy = cfg.fault.merge_policy();
        let any_quarantined = self.health.iter().any(HomeHealth::quarantined);
        self.participants.clear();
        if any_quarantined {
            self.participants
                .extend(self.health.iter().map(|h| !h.quarantined()));
        }
        let participants: Option<&[bool]> = if any_quarantined {
            Some(&self.participants)
        } else {
            None
        };
        self.fed_round += 1;
        federate(
            &mut self.agents,
            federation,
            &self.bus,
            &self.cloud,
            self.fed_round,
            &policy,
            cfg.aggregation,
            &mut self.fed_engine,
            self.hier.as_mut(),
            participants,
        );
    }

    /// Captures the complete cross-day state into a snapshot.
    pub fn to_snapshot(
        &self,
        cfg: &SimConfig,
        method: EmsMethod,
        forecast: ForecastState,
    ) -> RunSnapshot {
        RunSnapshot {
            meta: SnapshotMeta {
                config_hash: cfg.run_hash(),
                method: method.name().to_string(),
                next_day: self.next_day,
                fed_round: self.fed_round,
                n_homes: cfg.n_residences as u64,
                n_devices: cfg.devices_per_home() as u64,
            },
            forecast,
            agents: self
                .agents
                .iter()
                .map(|home| home.iter().map(DqnAgent::export_state).collect())
                .collect(),
            transport: TransportState {
                bus: self.bus.export_state(),
                cloud: self.cloud.export_state(),
            },
            metrics: MetricsState {
                total: self.total,
                daily_saved_fraction: self.daily_saved_fraction.clone(),
                daily_saved_kwh_per_client: self.daily_saved_kwh_per_client.clone(),
                hourly_saved: self.hourly_saved.to_vec(),
                hourly_standby: self.hourly_standby.to_vec(),
                per_home_late: self.per_home_late.clone(),
            },
            health: Self::health_active(cfg).then(|| self.export_health()),
            serve: None,
            shard: self.hier.as_ref().map(HierarchicalRound::export_state),
        }
    }

    /// Rebuilds the run state from a decoded snapshot, validating every
    /// shape against `cfg` before any agent is touched. Identity checks
    /// (config hash, method) belong to the caller — this function
    /// assumes they already passed and verifies structure only.
    pub fn from_snapshot(cfg: &SimConfig, snap: &RunSnapshot) -> Result<Self, StoreError> {
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let state_dim = env_cfg.state_dim();

        if snap.meta.n_homes != n as u64 || snap.meta.n_devices != d as u64 {
            return Err(StoreError::State(format!(
                "snapshot is for {}x{} agents, config wants {n}x{d}",
                snap.meta.n_homes, snap.meta.n_devices
            )));
        }
        let end_day = cfg.eval_start_day + cfg.eval_days;
        if snap.meta.next_day < cfg.eval_start_day || snap.meta.next_day > end_day {
            return Err(StoreError::State(format!(
                "snapshot day {} outside evaluation span {}..={end_day}",
                snap.meta.next_day, cfg.eval_start_day
            )));
        }
        let completed = (snap.meta.next_day - cfg.eval_start_day) as usize;
        let m = &snap.metrics;
        if snap.agents.len() != n
            || snap.agents.iter().any(|home| home.len() != d)
            || m.hourly_saved.len() != 24
            || m.hourly_standby.len() != 24
            || m.per_home_late.len() != n
            || m.daily_saved_fraction.len() != completed
            || m.daily_saved_kwh_per_client.len() != completed
        {
            return Err(StoreError::State(
                "snapshot sections disagree about run dimensions".to_string(),
            ));
        }

        let mut agents: Vec<Vec<DqnAgent>> = Vec::with_capacity(n);
        for (home, home_states) in snap.agents.iter().enumerate() {
            let mut row = Vec::with_capacity(d);
            for (device, state) in home_states.iter().enumerate() {
                let mut agent = DqnAgent::new(
                    state_dim,
                    DqnConfig {
                        seed: Self::agent_seed(cfg, home, device),
                        ..cfg.dqn.clone()
                    },
                );
                agent
                    .restore_state(state.clone())
                    .map_err(|e| StoreError::State(format!("agent [{home}][{device}]: {e}")))?;
                row.push(agent);
            }
            agents.push(row);
        }

        let bus = BroadcastBus::with_codec(n, LatencyModel::lan(), &cfg.fault, cfg.compression);
        bus.restore_state(&snap.transport.bus)
            .map_err(|e| StoreError::State(format!("bus: {e}")))?;
        let cloud = CloudAggregator::with_codec(LatencyModel::cloud(), &cfg.fault, cfg.compression);
        cloud.restore_state(&snap.transport.cloud);

        // SHARD is present exactly when the config runs hierarchically;
        // the saved assignment must match the plan the config rebuilds.
        let mut hier = Self::build_hier(cfg);
        match (&mut hier, &snap.shard) {
            (Some(h), Some(s)) => h
                .restore_state(s)
                .map_err(|e| StoreError::State(format!("shard: {e}")))?,
            (None, None) => {}
            (Some(_), None) => {
                return Err(StoreError::State(
                    "config is hierarchical but the snapshot has no shard section".to_string(),
                ))
            }
            (None, Some(_)) => {
                return Err(StoreError::State(
                    "snapshot has a shard section but the config is not hierarchical".to_string(),
                ))
            }
        }

        let mut hourly_saved = [0.0f64; 24];
        hourly_saved.copy_from_slice(&m.hourly_saved);
        let mut hourly_standby = [0.0f64; 24];
        hourly_standby.copy_from_slice(&m.hourly_standby);

        // HEALTH is present exactly when a hostile-telemetry feature is
        // active; either way the restored state must match what the
        // uninterrupted run carries at this day boundary.
        let mut health = vec![HomeHealth::default(); n];
        let mut imputed_minutes = 0;
        let mut health_transitions = 0;
        let mut quarantined_home_days = 0;
        let mut rollbacks = 0;
        let mut daily_mean_loss = Vec::with_capacity(cfg.eval_days as usize);
        if let Some(h) = &snap.health {
            if h.per_home.len() != n || h.daily_mean_loss.len() != completed {
                return Err(StoreError::State(
                    "health section disagrees about run dimensions".to_string(),
                ));
            }
            for (home, rec) in h.per_home.iter().enumerate() {
                health[home] = HomeHealth {
                    state: match rec.state {
                        0 => HealthState::Healthy,
                        1 => HealthState::Degraded,
                        2 => HealthState::Quarantined,
                        other => {
                            return Err(StoreError::State(format!(
                                "home {home}: unknown health state {other}"
                            )))
                        }
                    },
                    dirty_days: rec.dirty_days,
                    clean_days: rec.clean_days,
                };
            }
            imputed_minutes = h.imputed_minutes;
            health_transitions = h.health_transitions;
            quarantined_home_days = h.quarantined_home_days;
            rollbacks = h.rollbacks;
            daily_mean_loss.extend_from_slice(&h.daily_mean_loss);
        }

        Ok(EmsState {
            agents,
            bus,
            cloud,
            hier,
            fed_engine: DflRound::new(),
            day_ws: DayWorkspace::default(),
            fed_round: snap.meta.fed_round,
            next_day: snap.meta.next_day,
            total: m.total,
            daily_saved_fraction: m.daily_saved_fraction.clone(),
            daily_saved_kwh_per_client: m.daily_saved_kwh_per_client.clone(),
            hourly_saved,
            hourly_standby,
            per_home_late: m.per_home_late.clone(),
            health,
            imputed_minutes,
            health_transitions,
            quarantined_home_days,
            rollbacks,
            daily_mean_loss,
            participants: Vec::with_capacity(n),
        })
    }
}

/// Runs the EMS over the evaluation span.
pub fn run_ems(cfg: &SimConfig, method: EmsMethod, forecast: &ForecastPhase) -> EmsPhase {
    cfg.validate();
    let started = Instant::now();
    let mut state = EmsState::fresh(cfg);
    while !state.done(cfg) {
        state.advance_day(cfg, method, forecast);
    }
    state.into_phase(cfg, started.elapsed().as_secs_f64())
}

/// Advances one home's episodes to `seg_end`, accumulating (saved,
/// standby) kWh per hour-of-day into the workspace's own buckets
/// (`hw.saved` / `hw.standby`, zeroed here). Steady state performs no
/// heap allocation: episode states live in each device's double
/// buffer, and transition vectors cycle through the home's pool via
/// replay-ring evictions.
fn run_segment(
    cfg: &SimConfig,
    hw: &mut HomeWorkspace,
    agents: &mut [DqnAgent],
    seg_end: usize,
    train: bool,
) {
    hw.saved = [0.0f64; 24];
    hw.standby = [0.0f64; 24];
    let HomeWorkspace {
        devices,
        pool,
        saved,
        standby,
        loss_sum,
        loss_steps,
        nonfinite_losses,
        ..
    } = hw;
    for (device, dd) in devices.iter_mut().enumerate() {
        let Some(env) = &mut dd.env else { continue };
        let agent = &mut agents[device];
        let mut steps_since_train = 0usize;
        while !env.done() && env.current_minute() < seg_end {
            let minute = env.current_minute();
            let action = agent.act(&dd.cur);
            // Hour-of-day bookkeeping uses ground truth via the account
            // delta (standby saved only changes on standby minutes).
            let before = *env.account();
            let (reward, done) = env.step_into(action, &mut dd.next);
            let after = *env.account();
            let hour = minute / 60;
            saved[hour] += after.standby_saved_kwh - before.standby_saved_kwh;
            standby[hour] += after.standby_total_kwh - before.standby_total_kwh;
            let mut state = pool.pop().unwrap_or_default();
            state.clear();
            state.extend_from_slice(&dd.cur);
            let next_state = if done {
                None
            } else {
                let mut s = pool.pop().unwrap_or_default();
                s.clear();
                s.extend_from_slice(&dd.next);
                Some(s)
            };
            if let Some(evicted) = agent.remember_evict(Transition {
                state,
                action: action.index(),
                reward,
                next_state,
            }) {
                pool.push(evicted.state);
                if let Some(s) = evicted.next_state {
                    pool.push(s);
                }
            }
            steps_since_train += 1;
            if train && steps_since_train >= cfg.train_every && agent.ready() {
                let loss = agent.train_step();
                if loss.is_finite() {
                    *loss_sum += loss;
                    *loss_steps += 1;
                } else {
                    *nonfinite_losses += 1;
                }
                steps_since_train = 0;
            }
            std::mem::swap(&mut dd.cur, &mut dd.next);
        }
    }
}

/// One federation step over every device's agents.
#[allow(clippy::too_many_arguments)]
fn federate(
    agents: &mut [Vec<DqnAgent>],
    federation: DrlFederation,
    bus: &BroadcastBus,
    cloud: &CloudAggregator,
    round: u64,
    policy: &MergePolicy,
    mode: AggregationMode,
    engine: &mut DflRound,
    hier: Option<&mut HierarchicalRound>,
    participants: Option<&[bool]>,
) {
    let d = agents[0].len();
    match federation {
        DrlFederation::CloudFull => {
            for device in 0..d {
                // Snapshot exports are independent per home; build them
                // in parallel, then upload sequentially in home order so
                // the pending queue (and with it the average order and
                // the fault plan's per-arrival decisions) matches the
                // sequential reference exactly.
                let updates: Vec<_> = agents
                    .par_iter()
                    .enumerate()
                    .map(|(home, home_agents)| {
                        aggregate::snapshot_update(&home_agents[device], home, round, device as u64)
                    })
                    .collect();
                // Quarantined homes upload nothing; they still receive
                // the aggregate below (downloads carry healthy data).
                for (home, update) in updates.into_iter().enumerate() {
                    if participants.is_none_or(|m| m[home]) {
                        cloud.upload(update);
                    }
                }
                cloud.aggregate_with_quorum(policy.min_quorum);
                agents.par_iter_mut().enumerate().for_each(|(home, row)| {
                    // An offline home (or a round with nothing
                    // aggregated yet) keeps its local agent.
                    if let Some(global) = cloud.download_for(home, round) {
                        row[device].import_all(&global);
                    }
                });
            }
        }
        DrlFederation::None => {}
        DrlFederation::LanAlpha(alpha) => {
            // Under Hierarchical the flat bus is bypassed entirely: the
            // two-level engine owns per-shard buses and the top-level
            // combine. Flat modes run the existing single-bus round.
            let mut hier = hier;
            for device in 0..d {
                let mut col: Vec<&mut DqnAgent> = agents
                    .iter_mut()
                    .map(|home_agents| &mut home_agents[device])
                    .collect();
                if let Some(h) = hier.as_deref_mut() {
                    let _ = h.run(
                        &mut col,
                        &HierParams {
                            round,
                            model_id: device as u64,
                            alpha: Some(alpha),
                            policy,
                            participants,
                        },
                    );
                } else {
                    let _ = engine.run(
                        &mut col,
                        &RoundParams {
                            bus,
                            round,
                            model_id: device as u64,
                            alpha: Some(alpha),
                            policy,
                            mode,
                            participants,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::train_forecasters;

    fn tiny_run(method: EmsMethod) -> EmsPhase {
        let cfg = SimConfig::tiny(3);
        let forecast = train_forecasters(&cfg, method);
        run_ems(&cfg, method, &forecast)
    }

    #[test]
    fn federation_modes_match_table_2() {
        assert_eq!(EmsMethod::Local.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Cloud.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Fl.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Frl.drl_federation(6), DrlFederation::CloudFull);
        assert_eq!(
            EmsMethod::Pfdrl.drl_federation(6),
            DrlFederation::LanAlpha(6)
        );
    }

    #[test]
    fn local_ems_moves_no_bytes() {
        let phase = tiny_run(EmsMethod::Local);
        assert_eq!(phase.comm_bytes, 0);
        assert!(phase.account.minutes > 0);
        assert_eq!(phase.daily_saved_fraction.len(), 2);
    }

    #[test]
    fn pfdrl_moves_fewer_drl_bytes_than_frl() {
        let pf = tiny_run(EmsMethod::Pfdrl);
        let frl = tiny_run(EmsMethod::Frl);
        assert!(pf.comm_bytes > 0);
        assert!(frl.comm_bytes > 0);
        // With n=3 residences both transports move 6 point-to-point
        // messages per device-round (bus: 3 broadcasts x 2 deliveries;
        // cloud: 3 up + 3 down), but PFDRL's payload is only the alpha
        // base layers, so its total volume must be strictly smaller.
        assert!(
            pf.comm_bytes < frl.comm_bytes,
            "pfdrl bytes {} >= frl bytes {}",
            pf.comm_bytes,
            frl.comm_bytes
        );
    }

    #[test]
    fn saved_energy_is_bounded_by_available_standby() {
        let phase = tiny_run(EmsMethod::Pfdrl);
        assert!(phase.account.standby_saved_kwh <= phase.account.standby_total_kwh + 1e-12);
        let f = phase.account.saved_fraction().unwrap();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn hourly_series_have_24_buckets_and_match_totals() {
        let phase = tiny_run(EmsMethod::Local);
        assert_eq!(phase.hourly_saved_kwh_per_client.len(), 24);
        assert_eq!(phase.hourly_standby_kwh_per_client.len(), 24);
        let n = 3.0;
        let hourly_total: f64 = phase.hourly_saved_kwh_per_client.iter().sum::<f64>() * n;
        assert!(
            (hourly_total - phase.account.standby_saved_kwh).abs() < 1e-9,
            "hourly {hourly_total} vs account {}",
            phase.account.standby_saved_kwh
        );
    }

    #[test]
    fn per_home_fractions_cover_every_home() {
        let phase = tiny_run(EmsMethod::Pfdrl);
        assert_eq!(phase.per_home_saved_fraction.len(), 3);
        for f in &phase.per_home_saved_fraction {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn span_predictions_match_full_day_bitwise() {
        // The serve loop predicts a day in arbitrary chunk spans; every
        // backend's predict_into treats rows independently, so the
        // concatenated spans must equal the one-shot full day bit for
        // bit — for the linear and the recurrent forecaster alike.
        use pfdrl_forecast::ForecastMethod;
        for fm in [ForecastMethod::Lr, ForecastMethod::Lstm] {
            let mut cfg = SimConfig::tiny(11);
            cfg.forecast_method = fm;
            let forecast = train_forecasters(&cfg, EmsMethod::Local);
            let gen = TraceGenerator::new(cfg.generator());
            let hh = gen.household(1);
            let spec = &hh.devices[0];
            let mut prev = DayTrace::default();
            let mut today = DayTrace::default();
            gen.day_trace_into(&hh, 0, 2, &mut prev);
            gen.day_trace_into(&hh, 0, 3, &mut today);

            let mut ws = PredictDayWorkspace::default();
            let mut full = Vec::new();
            predict_day_into(
                &cfg,
                forecast.models[1][0].as_ref(),
                &prev,
                &today,
                spec.on_watts,
                &mut ws,
                &mut full,
            );

            for chunk in [45usize, 60, 720, MINUTES_PER_DAY] {
                let mut out = Vec::new();
                let mut r0 = 0usize;
                while r0 < MINUTES_PER_DAY {
                    let r1 = (r0 + chunk).min(MINUTES_PER_DAY);
                    predict_span_into(
                        &cfg,
                        forecast.models[1][0].as_ref(),
                        &prev.watts,
                        &today.watts,
                        spec.on_watts,
                        r0,
                        r1,
                        &mut ws,
                        &mut out,
                    );
                    r0 = r1;
                }
                assert_eq!(out.len(), full.len());
                for (t, (a, b)) in out.iter().zip(&full).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{fm:?} chunk {chunk}: minute {t} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn pfdrl_federation_preserves_personal_layers() {
        // After a run, PFDRL agents share base layers but keep distinct
        // personalization layers.
        let cfg = SimConfig::tiny(5);
        let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
        let _ = run_ems(&cfg, EmsMethod::Pfdrl, &forecast);
        // (Agents are internal to run_ems; the property is asserted at the
        // unit level in pfdrl-fl. Here we just confirm the run completes
        // with sharing enabled — see personalization tests for the
        // layer-level invariant.)
    }
}
