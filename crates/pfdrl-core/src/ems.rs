//! Phase 2 of every pipeline: running the DRL energy-management system
//! over the evaluation days, with the method's DRL federation mode
//! (Table 2, "EMS" column).
//!
//! * **Local / Cloud / FL** — every home trains its DQNs alone.
//! * **FRL** — full Q-networks are FedAvg-ed through the cloud every γ
//!   hours.
//! * **PFDRL** — only the first α layers are broadcast over the LAN every
//!   γ hours; the remaining layers stay personal (Eqs. 7–8).
//!
//! Each simulated day is split into γ-aligned segments; all residences
//! advance their episodes through a segment in parallel (rayon), then the
//! federation step runs at the boundary.

use crate::config::SimConfig;
use crate::forecast::ForecastPhase;
use crate::method::EmsMethod;
use pfdrl_data::{DayTrace, TraceGenerator, MINUTES_PER_DAY};
use pfdrl_drl::{DqnAgent, DqnConfig, Transition};
use pfdrl_env::{DeviceEnv, EnergyAccount, EnvConfig};
use pfdrl_fl::{
    aggregate, AggregationMode, BroadcastBus, CloudAggregator, DflRound, LatencyModel, MergePolicy,
    RoundParams,
};
use pfdrl_nn::Layered;
use pfdrl_store::{
    ForecastState, MetricsState, RunSnapshot, SnapshotMeta, StoreError, TransportState,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How a method federates its DRL agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrlFederation {
    /// No sharing (Local, Cloud, FL).
    None,
    /// Full-model FedAvg through the cloud (FRL).
    CloudFull,
    /// α base layers over the LAN (PFDRL).
    LanAlpha(usize),
}

impl EmsMethod {
    /// The DRL federation mode of this method.
    pub fn drl_federation(self, alpha: usize) -> DrlFederation {
        match self {
            EmsMethod::Local | EmsMethod::Cloud | EmsMethod::Fl => DrlFederation::None,
            EmsMethod::Frl => DrlFederation::CloudFull,
            EmsMethod::Pfdrl => DrlFederation::LanAlpha(alpha),
        }
    }
}

/// Result of the EMS phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmsPhase {
    /// Aggregate account over all homes, devices and days.
    pub account: EnergyAccount,
    /// Per-eval-day saved-standby fraction across the neighbourhood
    /// (the Figure 9 convergence curve).
    pub daily_saved_fraction: Vec<f64>,
    /// Per-eval-day saved energy per client, kWh (Figure 9 left axis).
    pub daily_saved_kwh_per_client: Vec<f64>,
    /// Saved energy per client by hour of day, kWh (Figure 11).
    pub hourly_saved_kwh_per_client: Vec<f64>,
    /// Available standby energy per client by hour of day, kWh.
    pub hourly_standby_kwh_per_client: Vec<f64>,
    /// Per-home saved fraction over the last third of eval days
    /// (Figure 12 error bars).
    pub per_home_saved_fraction: Vec<f64>,
    /// Per-home saved energy over the last third of eval days, kWh.
    pub per_home_saved_kwh: Vec<f64>,
    /// Wall-clock compute time, seconds.
    pub train_wall_s: f64,
    /// Simulated communication time, seconds.
    pub comm_s: f64,
    /// Bytes moved over the simulated network.
    pub comm_bytes: u64,
}

/// Per-minute prediction of one device-day, produced by feeding the
/// forecaster windows of *real* readings that end `horizon` minutes
/// before each target minute.
pub fn predict_day(
    cfg: &SimConfig,
    forecaster: &dyn pfdrl_forecast::Forecaster,
    prev_day: &DayTrace,
    today: &DayTrace,
    scale: f64,
) -> Vec<f64> {
    let window = cfg.window;
    let horizon = cfg.horizon;
    let transform = cfg.transform;
    let mut series = prev_day.watts.clone();
    series.extend_from_slice(&today.watts);
    let mut inputs = Vec::with_capacity(MINUTES_PER_DAY);
    for t in 0..MINUTES_PER_DAY {
        let end = MINUTES_PER_DAY + t - horizon; // exclusive window end
        let startw = end - window;
        let mut feat = Vec::with_capacity(window + 2);
        for w in &series[startw..end] {
            feat.push(transform.encode(w / scale));
        }
        let angle = 2.0 * std::f64::consts::PI * t as f64 / MINUTES_PER_DAY as f64;
        feat.push(angle.sin());
        feat.push(angle.cos());
        inputs.push(feat);
    }
    forecaster
        .predict(&inputs)
        .iter()
        .map(|p| (transform.decode(*p) * scale).max(0.0))
        .collect()
}

/// Internal per-day, per-home bundle moved across segment boundaries.
struct HomeDay {
    envs: Vec<Option<DeviceEnv>>,
    states: Vec<Option<Vec<f64>>>,
}

/// The cross-day state of an EMS run — exactly what must survive a
/// crash for the resumed run to be bit-identical to the uninterrupted
/// one. At a day boundary no episode is live, so this is the complete
/// persistent state: agents (networks, optimizers, replay, RNG
/// streams), federation transports (statistics plus any
/// straggler-parked updates from an active fault plan), the federation
/// round counter, and the metric accumulators.
pub(crate) struct EmsState {
    pub agents: Vec<Vec<DqnAgent>>,
    pub bus: BroadcastBus,
    pub cloud: CloudAggregator,
    /// Reusable federation-round engine (scratch buffers + update
    /// pool). Pure transient workspace — it holds no cross-round
    /// state, so it is rebuilt fresh on resume and never snapshotted.
    pub fed_engine: DflRound,
    pub fed_round: u64,
    /// Next evaluation day to execute (absolute day index).
    pub next_day: u64,
    pub total: EnergyAccount,
    pub daily_saved_fraction: Vec<f64>,
    pub daily_saved_kwh_per_client: Vec<f64>,
    pub hourly_saved: [f64; 24],
    pub hourly_standby: [f64; 24],
    pub per_home_late: Vec<EnergyAccount>,
}

impl EmsState {
    /// Day-zero state with freshly seeded agents and empty transports.
    pub fn fresh(cfg: &SimConfig) -> Self {
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let state_dim = env_cfg.state_dim();
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();

        // One DQN per home-device pair.
        let agents: Vec<Vec<DqnAgent>> = (0..n)
            .map(|home| {
                (0..d)
                    .map(|device| {
                        DqnAgent::new(
                            state_dim,
                            DqnConfig {
                                seed: Self::agent_seed(cfg, home, device),
                                ..cfg.dqn.clone()
                            },
                        )
                    })
                    .collect()
            })
            .collect();

        EmsState {
            agents,
            // Federation transports, routed through the configured fault
            // plan (inert when cfg.fault is fault-free).
            bus: BroadcastBus::with_faults(n, LatencyModel::lan(), &cfg.fault),
            cloud: CloudAggregator::with_faults(LatencyModel::cloud(), &cfg.fault),
            fed_engine: DflRound::new(),
            fed_round: 0,
            next_day: cfg.eval_start_day,
            total: EnergyAccount::new(),
            daily_saved_fraction: Vec::with_capacity(cfg.eval_days as usize),
            daily_saved_kwh_per_client: Vec::with_capacity(cfg.eval_days as usize),
            hourly_saved: [0.0f64; 24],
            hourly_standby: [0.0f64; 24],
            per_home_late: vec![EnergyAccount::new(); n],
        }
    }

    fn agent_seed(cfg: &SimConfig, home: usize, device: usize) -> u64 {
        cfg.seed
            .wrapping_mul(0xC2B2_AE35)
            .wrapping_add((home as u64) << 13)
            .wrapping_add(device as u64)
    }

    /// Whether every evaluation day has been executed.
    pub fn done(&self, cfg: &SimConfig) -> bool {
        self.next_day >= cfg.eval_start_day + cfg.eval_days
    }

    /// Executes one evaluation day (`self.next_day`): builds the day's
    /// environments, walks the γ-aligned segments with federation at
    /// each boundary, and folds the day's accounts into the
    /// accumulators.
    pub fn advance_day(&mut self, cfg: &SimConfig, method: EmsMethod, forecast: &ForecastPhase) {
        let day = self.next_day;
        let gen = TraceGenerator::new(cfg.generator());
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();
        let federation = method.drl_federation(cfg.alpha);
        let policy = cfg.fault.merge_policy();
        let gamma_minutes = ((cfg.gamma_hours * 60.0).round() as usize).max(1);
        let late_start = cfg.eval_start_day + cfg.eval_days - cfg.eval_days.div_ceil(3);

        // Build the day's envs (predictions + ground truth), per home.
        let mut home_days: Vec<HomeDay> = (0..n as u64)
            .into_par_iter()
            .map(|home| {
                let hh = gen.household(home);
                let mut envs = Vec::with_capacity(d);
                let mut states = Vec::with_capacity(d);
                for device in 0..d {
                    let spec = &hh.devices[device];
                    if !spec.controllable {
                        envs.push(None);
                        states.push(None);
                        continue;
                    }
                    let prev = gen.day_trace(home, device, day - 1);
                    let today = gen.day_trace(home, device, day);
                    let pred = predict_day(
                        cfg,
                        forecast.models[home as usize][device].as_ref(),
                        &prev,
                        &today,
                        spec.on_watts,
                    );
                    let mut env = DeviceEnv::new(
                        spec.clone(),
                        pred,
                        today.watts.clone(),
                        today.modes.clone(),
                        env_cfg,
                    );
                    let s0 = env.reset();
                    envs.push(Some(env));
                    states.push(Some(s0));
                }
                HomeDay { envs, states }
            })
            .collect();

        // Walk the day in γ-aligned segments.
        let mut day_account = EnergyAccount::new();
        let day_minute0 = (day - cfg.eval_start_day) as usize * MINUTES_PER_DAY;
        let mut seg_start = 0usize;
        while seg_start < MINUTES_PER_DAY {
            let global = day_minute0 + seg_start;
            let next_boundary = ((global / gamma_minutes) + 1) * gamma_minutes;
            let seg_end = (next_boundary - day_minute0).min(MINUTES_PER_DAY);

            // All homes advance through the segment in parallel.
            let seg_hours: Vec<(Vec<f64>, Vec<f64>)> = home_days
                .par_iter_mut()
                .zip(self.agents.par_iter_mut())
                .map(|(hd, home_agents)| run_segment(cfg, hd, home_agents, seg_end))
                .collect();
            for (saved, standby) in seg_hours {
                for h in 0..24 {
                    self.hourly_saved[h] += saved[h];
                    self.hourly_standby[h] += standby[h];
                }
            }

            // Federation at the boundary (if the day is not over early).
            if seg_end < MINUTES_PER_DAY || next_boundary == day_minute0 + MINUTES_PER_DAY {
                self.fed_round += 1;
                federate(
                    &mut self.agents,
                    federation,
                    &self.bus,
                    &self.cloud,
                    self.fed_round,
                    &policy,
                    cfg.aggregation,
                    &mut self.fed_engine,
                );
            }
            seg_start = seg_end;
        }

        // Collect the day's accounts.
        for (home, hd) in home_days.iter().enumerate() {
            for env in hd.envs.iter().flatten() {
                day_account.merge(env.account());
                if day >= late_start {
                    self.per_home_late[home].merge(env.account());
                }
            }
        }
        self.total.merge(&day_account);
        self.daily_saved_fraction
            .push(day_account.saved_fraction().unwrap_or(0.0));
        self.daily_saved_kwh_per_client
            .push(day_account.standby_saved_kwh / n as f64);
        self.next_day = day + 1;
    }

    /// Folds the accumulated state into the phase result.
    pub fn into_phase(self, cfg: &SimConfig, train_wall_s: f64) -> EmsPhase {
        let n = cfg.n_residences;
        let comm_bytes = self.bus.stats().bytes
            + self.cloud.stats().upload_bytes
            + self.cloud.stats().download_bytes;
        let comm_s = self.bus.simulated_seconds() + self.cloud.simulated_seconds();
        EmsPhase {
            account: self.total,
            daily_saved_fraction: self.daily_saved_fraction,
            daily_saved_kwh_per_client: self.daily_saved_kwh_per_client,
            hourly_saved_kwh_per_client: self.hourly_saved.iter().map(|v| v / n as f64).collect(),
            hourly_standby_kwh_per_client: self
                .hourly_standby
                .iter()
                .map(|v| v / n as f64)
                .collect(),
            per_home_saved_fraction: self
                .per_home_late
                .iter()
                .map(|a| a.saved_fraction().unwrap_or(0.0))
                .collect(),
            per_home_saved_kwh: self
                .per_home_late
                .iter()
                .map(|a| a.standby_saved_kwh)
                .collect(),
            train_wall_s,
            comm_s,
            comm_bytes,
        }
    }

    /// Captures the complete cross-day state into a snapshot.
    pub fn to_snapshot(
        &self,
        cfg: &SimConfig,
        method: EmsMethod,
        forecast: ForecastState,
    ) -> RunSnapshot {
        RunSnapshot {
            meta: SnapshotMeta {
                config_hash: cfg.run_hash(),
                method: method.name().to_string(),
                next_day: self.next_day,
                fed_round: self.fed_round,
                n_homes: cfg.n_residences as u64,
                n_devices: cfg.devices_per_home() as u64,
            },
            forecast,
            agents: self
                .agents
                .iter()
                .map(|home| home.iter().map(DqnAgent::export_state).collect())
                .collect(),
            transport: TransportState {
                bus: self.bus.export_state(),
                cloud: self.cloud.export_state(),
            },
            metrics: MetricsState {
                total: self.total,
                daily_saved_fraction: self.daily_saved_fraction.clone(),
                daily_saved_kwh_per_client: self.daily_saved_kwh_per_client.clone(),
                hourly_saved: self.hourly_saved.to_vec(),
                hourly_standby: self.hourly_standby.to_vec(),
                per_home_late: self.per_home_late.clone(),
            },
        }
    }

    /// Rebuilds the run state from a decoded snapshot, validating every
    /// shape against `cfg` before any agent is touched. Identity checks
    /// (config hash, method) belong to the caller — this function
    /// assumes they already passed and verifies structure only.
    pub fn from_snapshot(cfg: &SimConfig, snap: &RunSnapshot) -> Result<Self, StoreError> {
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let state_dim = env_cfg.state_dim();

        if snap.meta.n_homes != n as u64 || snap.meta.n_devices != d as u64 {
            return Err(StoreError::State(format!(
                "snapshot is for {}x{} agents, config wants {n}x{d}",
                snap.meta.n_homes, snap.meta.n_devices
            )));
        }
        let end_day = cfg.eval_start_day + cfg.eval_days;
        if snap.meta.next_day < cfg.eval_start_day || snap.meta.next_day > end_day {
            return Err(StoreError::State(format!(
                "snapshot day {} outside evaluation span {}..={end_day}",
                snap.meta.next_day, cfg.eval_start_day
            )));
        }
        let completed = (snap.meta.next_day - cfg.eval_start_day) as usize;
        let m = &snap.metrics;
        if snap.agents.len() != n
            || snap.agents.iter().any(|home| home.len() != d)
            || m.hourly_saved.len() != 24
            || m.hourly_standby.len() != 24
            || m.per_home_late.len() != n
            || m.daily_saved_fraction.len() != completed
            || m.daily_saved_kwh_per_client.len() != completed
        {
            return Err(StoreError::State(
                "snapshot sections disagree about run dimensions".to_string(),
            ));
        }

        let mut agents: Vec<Vec<DqnAgent>> = Vec::with_capacity(n);
        for (home, home_states) in snap.agents.iter().enumerate() {
            let mut row = Vec::with_capacity(d);
            for (device, state) in home_states.iter().enumerate() {
                let mut agent = DqnAgent::new(
                    state_dim,
                    DqnConfig {
                        seed: Self::agent_seed(cfg, home, device),
                        ..cfg.dqn.clone()
                    },
                );
                agent
                    .restore_state(state.clone())
                    .map_err(|e| StoreError::State(format!("agent [{home}][{device}]: {e}")))?;
                row.push(agent);
            }
            agents.push(row);
        }

        let bus = BroadcastBus::with_faults(n, LatencyModel::lan(), &cfg.fault);
        bus.restore_state(&snap.transport.bus)
            .map_err(|e| StoreError::State(format!("bus: {e}")))?;
        let cloud = CloudAggregator::with_faults(LatencyModel::cloud(), &cfg.fault);
        cloud.restore_state(&snap.transport.cloud);

        let mut hourly_saved = [0.0f64; 24];
        hourly_saved.copy_from_slice(&m.hourly_saved);
        let mut hourly_standby = [0.0f64; 24];
        hourly_standby.copy_from_slice(&m.hourly_standby);

        Ok(EmsState {
            agents,
            bus,
            cloud,
            fed_engine: DflRound::new(),
            fed_round: snap.meta.fed_round,
            next_day: snap.meta.next_day,
            total: m.total,
            daily_saved_fraction: m.daily_saved_fraction.clone(),
            daily_saved_kwh_per_client: m.daily_saved_kwh_per_client.clone(),
            hourly_saved,
            hourly_standby,
            per_home_late: m.per_home_late.clone(),
        })
    }
}

/// Runs the EMS over the evaluation span.
pub fn run_ems(cfg: &SimConfig, method: EmsMethod, forecast: &ForecastPhase) -> EmsPhase {
    cfg.validate();
    let started = Instant::now();
    let mut state = EmsState::fresh(cfg);
    while !state.done(cfg) {
        state.advance_day(cfg, method, forecast);
    }
    state.into_phase(cfg, started.elapsed().as_secs_f64())
}

/// Advances one home's episodes to `seg_end`; returns (saved, standby)
/// kWh per hour-of-day accumulated during the segment.
fn run_segment(
    cfg: &SimConfig,
    hd: &mut HomeDay,
    agents: &mut [DqnAgent],
    seg_end: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut saved = vec![0.0f64; 24];
    let mut standby = vec![0.0f64; 24];
    for (device, slot) in hd.envs.iter_mut().enumerate() {
        let Some(env) = slot else { continue };
        let agent = &mut agents[device];
        let mut steps_since_train = 0usize;
        while !env.done() && env.current_minute() < seg_end {
            let minute = env.current_minute();
            let state = hd.states[device].clone().expect("live episode has a state");
            let action = agent.act(&state);
            // Hour-of-day bookkeeping uses ground truth via the account
            // delta (standby saved only changes on standby minutes).
            let before = *env.account();
            let step = env.step(action);
            let after = *env.account();
            let hour = minute / 60;
            saved[hour] += after.standby_saved_kwh - before.standby_saved_kwh;
            standby[hour] += after.standby_total_kwh - before.standby_total_kwh;
            agent.remember(Transition {
                state,
                action: action.index(),
                reward: step.reward,
                next_state: step.next_state.clone(),
            });
            steps_since_train += 1;
            if steps_since_train >= cfg.train_every && agent.ready() {
                agent.train_step();
                steps_since_train = 0;
            }
            hd.states[device] = step.next_state;
        }
    }
    (saved, standby)
}

/// One federation step over every device's agents.
#[allow(clippy::too_many_arguments)]
fn federate(
    agents: &mut [Vec<DqnAgent>],
    federation: DrlFederation,
    bus: &BroadcastBus,
    cloud: &CloudAggregator,
    round: u64,
    policy: &MergePolicy,
    mode: AggregationMode,
    engine: &mut DflRound,
) {
    let d = agents[0].len();
    match federation {
        DrlFederation::CloudFull => {
            for device in 0..d {
                // Snapshot exports are independent per home; build them
                // in parallel, then upload sequentially in home order so
                // the pending queue (and with it the average order and
                // the fault plan's per-arrival decisions) matches the
                // sequential reference exactly.
                let updates: Vec<_> = agents
                    .par_iter()
                    .enumerate()
                    .map(|(home, home_agents)| {
                        aggregate::snapshot_update(&home_agents[device], home, round, device as u64)
                    })
                    .collect();
                for update in updates {
                    cloud.upload(update);
                }
                cloud.aggregate_with_quorum(policy.min_quorum);
                agents.par_iter_mut().enumerate().for_each(|(home, row)| {
                    // An offline home (or a round with nothing
                    // aggregated yet) keeps its local agent.
                    if let Some(global) = cloud.download_for(home, round) {
                        row[device].import_all(&global);
                    }
                });
            }
        }
        DrlFederation::None => {}
        DrlFederation::LanAlpha(alpha) => {
            for device in 0..d {
                let mut col: Vec<&mut DqnAgent> = agents
                    .iter_mut()
                    .map(|home_agents| &mut home_agents[device])
                    .collect();
                let _ = engine.run(
                    &mut col,
                    &RoundParams {
                        bus,
                        round,
                        model_id: device as u64,
                        alpha: Some(alpha),
                        policy,
                        mode,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::train_forecasters;

    fn tiny_run(method: EmsMethod) -> EmsPhase {
        let cfg = SimConfig::tiny(3);
        let forecast = train_forecasters(&cfg, method);
        run_ems(&cfg, method, &forecast)
    }

    #[test]
    fn federation_modes_match_table_2() {
        assert_eq!(EmsMethod::Local.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Cloud.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Fl.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Frl.drl_federation(6), DrlFederation::CloudFull);
        assert_eq!(
            EmsMethod::Pfdrl.drl_federation(6),
            DrlFederation::LanAlpha(6)
        );
    }

    #[test]
    fn local_ems_moves_no_bytes() {
        let phase = tiny_run(EmsMethod::Local);
        assert_eq!(phase.comm_bytes, 0);
        assert!(phase.account.minutes > 0);
        assert_eq!(phase.daily_saved_fraction.len(), 2);
    }

    #[test]
    fn pfdrl_moves_fewer_drl_bytes_than_frl() {
        let pf = tiny_run(EmsMethod::Pfdrl);
        let frl = tiny_run(EmsMethod::Frl);
        assert!(pf.comm_bytes > 0);
        assert!(frl.comm_bytes > 0);
        // With n=3 residences both transports move 6 point-to-point
        // messages per device-round (bus: 3 broadcasts x 2 deliveries;
        // cloud: 3 up + 3 down), but PFDRL's payload is only the alpha
        // base layers, so its total volume must be strictly smaller.
        assert!(
            pf.comm_bytes < frl.comm_bytes,
            "pfdrl bytes {} >= frl bytes {}",
            pf.comm_bytes,
            frl.comm_bytes
        );
    }

    #[test]
    fn saved_energy_is_bounded_by_available_standby() {
        let phase = tiny_run(EmsMethod::Pfdrl);
        assert!(phase.account.standby_saved_kwh <= phase.account.standby_total_kwh + 1e-12);
        let f = phase.account.saved_fraction().unwrap();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn hourly_series_have_24_buckets_and_match_totals() {
        let phase = tiny_run(EmsMethod::Local);
        assert_eq!(phase.hourly_saved_kwh_per_client.len(), 24);
        assert_eq!(phase.hourly_standby_kwh_per_client.len(), 24);
        let n = 3.0;
        let hourly_total: f64 = phase.hourly_saved_kwh_per_client.iter().sum::<f64>() * n;
        assert!(
            (hourly_total - phase.account.standby_saved_kwh).abs() < 1e-9,
            "hourly {hourly_total} vs account {}",
            phase.account.standby_saved_kwh
        );
    }

    #[test]
    fn per_home_fractions_cover_every_home() {
        let phase = tiny_run(EmsMethod::Pfdrl);
        assert_eq!(phase.per_home_saved_fraction.len(), 3);
        for f in &phase.per_home_saved_fraction {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn pfdrl_federation_preserves_personal_layers() {
        // After a run, PFDRL agents share base layers but keep distinct
        // personalization layers.
        let cfg = SimConfig::tiny(5);
        let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
        let _ = run_ems(&cfg, EmsMethod::Pfdrl, &forecast);
        // (Agents are internal to run_ems; the property is asserted at the
        // unit level in pfdrl-fl. Here we just confirm the run completes
        // with sharing enabled — see personalization tests for the
        // layer-level invariant.)
    }
}
