//! Phase 2 of every pipeline: running the DRL energy-management system
//! over the evaluation days, with the method's DRL federation mode
//! (Table 2, "EMS" column).
//!
//! * **Local / Cloud / FL** — every home trains its DQNs alone.
//! * **FRL** — full Q-networks are FedAvg-ed through the cloud every γ
//!   hours.
//! * **PFDRL** — only the first α layers are broadcast over the LAN every
//!   γ hours; the remaining layers stay personal (Eqs. 7–8).
//!
//! Each simulated day is split into γ-aligned segments; all residences
//! advance their episodes through a segment in parallel (rayon), then the
//! federation step runs at the boundary.

use crate::config::SimConfig;
use crate::forecast::ForecastPhase;
use crate::method::EmsMethod;
use pfdrl_data::{DayTrace, HouseholdSpec, TraceGenerator, MINUTES_PER_DAY};
use pfdrl_drl::{DqnAgent, DqnConfig, Transition};
use pfdrl_env::{DeviceEnv, EnergyAccount, EnvConfig};
use pfdrl_fl::{
    aggregate, AggregationMode, BroadcastBus, CloudAggregator, DflRound, LatencyModel, MergePolicy,
    RoundParams,
};
use pfdrl_forecast::PredictWorkspace;
use pfdrl_nn::{Layered, Matrix};
use pfdrl_store::{
    ForecastState, MetricsState, RunSnapshot, SnapshotMeta, StoreError, TransportState,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How a method federates its DRL agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrlFederation {
    /// No sharing (Local, Cloud, FL).
    None,
    /// Full-model FedAvg through the cloud (FRL).
    CloudFull,
    /// α base layers over the LAN (PFDRL).
    LanAlpha(usize),
}

impl EmsMethod {
    /// The DRL federation mode of this method.
    pub fn drl_federation(self, alpha: usize) -> DrlFederation {
        match self {
            EmsMethod::Local | EmsMethod::Cloud | EmsMethod::Fl => DrlFederation::None,
            EmsMethod::Frl => DrlFederation::CloudFull,
            EmsMethod::Pfdrl => DrlFederation::LanAlpha(alpha),
        }
    }
}

/// Result of the EMS phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmsPhase {
    /// Aggregate account over all homes, devices and days.
    pub account: EnergyAccount,
    /// Per-eval-day saved-standby fraction across the neighbourhood
    /// (the Figure 9 convergence curve).
    pub daily_saved_fraction: Vec<f64>,
    /// Per-eval-day saved energy per client, kWh (Figure 9 left axis).
    pub daily_saved_kwh_per_client: Vec<f64>,
    /// Saved energy per client by hour of day, kWh (Figure 11).
    pub hourly_saved_kwh_per_client: Vec<f64>,
    /// Available standby energy per client by hour of day, kWh.
    pub hourly_standby_kwh_per_client: Vec<f64>,
    /// Per-home saved fraction over the last third of eval days
    /// (Figure 12 error bars).
    pub per_home_saved_fraction: Vec<f64>,
    /// Per-home saved energy over the last third of eval days, kWh.
    pub per_home_saved_kwh: Vec<f64>,
    /// Wall-clock compute time, seconds.
    pub train_wall_s: f64,
    /// Simulated communication time, seconds.
    pub comm_s: f64,
    /// Bytes moved over the simulated network.
    pub comm_bytes: u64,
}

/// Per-minute prediction of one device-day, produced by feeding the
/// forecaster windows of *real* readings that end `horizon` minutes
/// before each target minute.
///
/// Allocating reference implementation; the day pipeline runs
/// [`predict_day_into`], which is pinned bitwise-identical to this.
pub fn predict_day(
    cfg: &SimConfig,
    forecaster: &dyn pfdrl_forecast::Forecaster,
    prev_day: &DayTrace,
    today: &DayTrace,
    scale: f64,
) -> Vec<f64> {
    let window = cfg.window;
    let horizon = cfg.horizon;
    let transform = cfg.transform;
    let watts_at = |idx: usize| {
        if idx < MINUTES_PER_DAY {
            prev_day.watts[idx]
        } else {
            today.watts[idx - MINUTES_PER_DAY]
        }
    };
    let mut inputs = Vec::with_capacity(MINUTES_PER_DAY);
    for t in 0..MINUTES_PER_DAY {
        let end = MINUTES_PER_DAY + t - horizon; // exclusive window end
        let startw = end - window;
        let mut feat = Vec::with_capacity(window + 2);
        for idx in startw..end {
            feat.push(transform.encode(watts_at(idx) / scale));
        }
        let angle = 2.0 * std::f64::consts::PI * t as f64 / MINUTES_PER_DAY as f64;
        feat.push(angle.sin());
        feat.push(angle.cos());
        inputs.push(feat);
    }
    forecaster
        .predict(&inputs)
        .iter()
        .map(|p| (transform.decode(*p) * scale).max(0.0))
        .collect()
}

/// Reusable buffers for [`predict_day_into`]: the streaming
/// featurizer's encoded-series span, the flat input matrix handed to
/// the forecaster, the raw prediction vector, and the forecaster's own
/// inference scratch.
#[derive(Debug, Default)]
pub struct PredictDayWorkspace {
    encoded: Vec<f64>,
    inputs: Matrix,
    raw: Vec<f64>,
    fws: PredictWorkspace,
}

/// Allocation-free [`predict_day`] writing into `out`.
///
/// Consecutive minutes share `window - 1` of their window elements, so
/// instead of encoding `window` values per minute this encodes the
/// whole span the windows touch exactly once and each input row copies
/// its slice of the encoded buffer. `transform.encode` is a pure
/// per-element function and the row contents, feature order and decode
/// step are unchanged, so the output is bit-identical to
/// [`predict_day`].
pub fn predict_day_into(
    cfg: &SimConfig,
    forecaster: &dyn pfdrl_forecast::Forecaster,
    prev_day: &DayTrace,
    today: &DayTrace,
    scale: f64,
    ws: &mut PredictDayWorkspace,
    out: &mut Vec<f64>,
) {
    let window = cfg.window;
    let horizon = cfg.horizon;
    let transform = cfg.transform;
    // Minute t's window covers concatenated-series indices
    // [1440 + t - horizon - window, 1440 + t - horizon); over all t the
    // used span is `window + 1439` elements starting at
    // `1440 - horizon - window`.
    let start0 = MINUTES_PER_DAY - horizon - window;
    let span = window + MINUTES_PER_DAY - 1;
    ws.encoded.clear();
    ws.encoded.reserve(span);
    for idx in start0..start0 + span {
        let w = if idx < MINUTES_PER_DAY {
            prev_day.watts[idx]
        } else {
            today.watts[idx - MINUTES_PER_DAY]
        };
        ws.encoded.push(transform.encode(w / scale));
    }
    ws.inputs.resize(MINUTES_PER_DAY, window + 2);
    for t in 0..MINUTES_PER_DAY {
        let row = ws.inputs.row_mut(t);
        row[..window].copy_from_slice(&ws.encoded[t..t + window]);
        let angle = 2.0 * std::f64::consts::PI * t as f64 / MINUTES_PER_DAY as f64;
        row[window] = angle.sin();
        row[window + 1] = angle.cos();
    }
    forecaster.predict_into(&ws.inputs, &mut ws.fws, &mut ws.raw);
    out.clear();
    out.extend(
        ws.raw
            .iter()
            .map(|p| (transform.decode(*p) * scale).max(0.0)),
    );
}

/// Recycled buffers for one device's day: the trace pair (today's
/// trace becomes tomorrow's `prev` via a swap), the decoded
/// predictions, the persistent environment reloaded day over day with
/// [`DeviceEnv::load_day`], and the live episode's state
/// double-buffer.
#[derive(Default)]
struct DeviceDay {
    prev: DayTrace,
    today: DayTrace,
    /// Day index `today` currently holds; drives the prev/today swap.
    loaded_day: Option<u64>,
    pred: Vec<f64>,
    env: Option<DeviceEnv>,
    /// Current episode state `s_t`.
    cur: Vec<f64>,
    /// Scratch for `s_{t+1}`; swapped into `cur` after each step.
    next: Vec<f64>,
}

/// One home's recycled day-pipeline buffers.
#[derive(Default)]
struct HomeWorkspace {
    /// Static household description, built once (it is a pure function
    /// of the generator config).
    hh: Option<HouseholdSpec>,
    devices: Vec<DeviceDay>,
    /// Recycled state-vector heap buffers; refilled by replay-ring
    /// evictions, drained to build transitions.
    pool: Vec<Vec<f64>>,
    pws: PredictDayWorkspace,
    /// Per-segment hour-of-day accumulators written by [`run_segment`].
    saved: [f64; 24],
    standby: [f64; 24],
}

/// Per-home day-pipeline workspaces. Pure transient scratch, like
/// [`EmsState::fed_engine`]: it holds no cross-day state an
/// uninterrupted run depends on (traces are regenerated bit-identically
/// from the seed when empty), so it is rebuilt fresh on resume and
/// never snapshotted.
#[derive(Default)]
pub struct DayWorkspace {
    homes: Vec<HomeWorkspace>,
}

impl DayWorkspace {
    fn ensure_shape(&mut self, n: usize, d: usize) {
        self.homes.resize_with(n, HomeWorkspace::default);
        for hw in &mut self.homes {
            hw.devices.resize_with(d, DeviceDay::default);
        }
    }
}

/// The cross-day state of an EMS run — exactly what must survive a
/// crash for the resumed run to be bit-identical to the uninterrupted
/// one. At a day boundary no episode is live, so this is the complete
/// persistent state: agents (networks, optimizers, replay, RNG
/// streams), federation transports (statistics plus any
/// straggler-parked updates from an active fault plan), the federation
/// round counter, and the metric accumulators.
///
/// Public so benchmarks and allocation tests can drive the run one
/// [`EmsState::advance_day`] at a time; normal callers use
/// [`run_ems`] or the resumable runners.
pub struct EmsState {
    pub agents: Vec<Vec<DqnAgent>>,
    pub bus: BroadcastBus,
    pub cloud: CloudAggregator,
    /// Reusable federation-round engine (scratch buffers + update
    /// pool). Pure transient workspace — it holds no cross-round
    /// state, so it is rebuilt fresh on resume and never snapshotted.
    pub fed_engine: DflRound,
    /// Reusable per-home day-pipeline buffers (traces, predictions,
    /// environments, episode states). Pure transient workspace — like
    /// `fed_engine`, rebuilt fresh on resume and never snapshotted.
    pub day_ws: DayWorkspace,
    pub fed_round: u64,
    /// Next evaluation day to execute (absolute day index).
    pub next_day: u64,
    pub total: EnergyAccount,
    pub daily_saved_fraction: Vec<f64>,
    pub daily_saved_kwh_per_client: Vec<f64>,
    pub hourly_saved: [f64; 24],
    pub hourly_standby: [f64; 24],
    pub per_home_late: Vec<EnergyAccount>,
}

impl EmsState {
    /// Day-zero state with freshly seeded agents and empty transports.
    pub fn fresh(cfg: &SimConfig) -> Self {
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let state_dim = env_cfg.state_dim();
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();

        // One DQN per home-device pair.
        let agents: Vec<Vec<DqnAgent>> = (0..n)
            .map(|home| {
                (0..d)
                    .map(|device| {
                        DqnAgent::new(
                            state_dim,
                            DqnConfig {
                                seed: Self::agent_seed(cfg, home, device),
                                ..cfg.dqn.clone()
                            },
                        )
                    })
                    .collect()
            })
            .collect();

        EmsState {
            agents,
            // Federation transports, routed through the configured fault
            // plan (inert when cfg.fault is fault-free).
            bus: BroadcastBus::with_faults(n, LatencyModel::lan(), &cfg.fault),
            cloud: CloudAggregator::with_faults(LatencyModel::cloud(), &cfg.fault),
            fed_engine: DflRound::new(),
            day_ws: DayWorkspace::default(),
            fed_round: 0,
            next_day: cfg.eval_start_day,
            total: EnergyAccount::new(),
            daily_saved_fraction: Vec::with_capacity(cfg.eval_days as usize),
            daily_saved_kwh_per_client: Vec::with_capacity(cfg.eval_days as usize),
            hourly_saved: [0.0f64; 24],
            hourly_standby: [0.0f64; 24],
            per_home_late: vec![EnergyAccount::new(); n],
        }
    }

    fn agent_seed(cfg: &SimConfig, home: usize, device: usize) -> u64 {
        cfg.seed
            .wrapping_mul(0xC2B2_AE35)
            .wrapping_add((home as u64) << 13)
            .wrapping_add(device as u64)
    }

    /// Whether every evaluation day has been executed.
    pub fn done(&self, cfg: &SimConfig) -> bool {
        self.next_day >= cfg.eval_start_day + cfg.eval_days
    }

    /// Executes one evaluation day (`self.next_day`): builds the day's
    /// environments, walks the γ-aligned segments with federation at
    /// each boundary, and folds the day's accounts into the
    /// accumulators.
    pub fn advance_day(&mut self, cfg: &SimConfig, method: EmsMethod, forecast: &ForecastPhase) {
        let day = self.next_day;
        let gen = TraceGenerator::new(cfg.generator());
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();
        let federation = method.drl_federation(cfg.alpha);
        let policy = cfg.fault.merge_policy();
        let gamma_minutes = ((cfg.gamma_hours * 60.0).round() as usize).max(1);
        let late_start = cfg.eval_start_day + cfg.eval_days - cfg.eval_days.div_ceil(3);

        // Build the day's envs (predictions + ground truth), per home,
        // into the recycled workspaces.
        self.day_ws.ensure_shape(n, d);
        self.day_ws
            .homes
            .par_iter_mut()
            .enumerate()
            .for_each(|(home, hw)| {
                let HomeWorkspace {
                    hh, devices, pws, ..
                } = hw;
                let hh = hh.get_or_insert_with(|| gen.household(home as u64));
                for (device, dd) in devices.iter_mut().enumerate() {
                    let spec = &hh.devices[device];
                    if !spec.controllable {
                        continue;
                    }
                    if dd.loaded_day == Some(day - 1) {
                        std::mem::swap(&mut dd.prev, &mut dd.today);
                    } else {
                        gen.day_trace_into(hh, device, day - 1, &mut dd.prev);
                    }
                    gen.day_trace_into(hh, device, day, &mut dd.today);
                    dd.loaded_day = Some(day);
                    predict_day_into(
                        cfg,
                        forecast.models[home][device].as_ref(),
                        &dd.prev,
                        &dd.today,
                        spec.on_watts,
                        pws,
                        &mut dd.pred,
                    );
                    match &mut dd.env {
                        Some(env) => env.load_day(
                            spec.clone(),
                            &dd.pred,
                            &dd.today.watts,
                            &dd.today.modes,
                            env_cfg,
                        ),
                        None => {
                            dd.env = Some(DeviceEnv::new(
                                spec.clone(),
                                dd.pred.clone(),
                                dd.today.watts.clone(),
                                dd.today.modes.clone(),
                                env_cfg,
                            ));
                        }
                    }
                    dd.env
                        .as_mut()
                        .expect("just loaded")
                        .reset_into(&mut dd.cur);
                }
            });

        // Walk the day in γ-aligned segments.
        let mut day_account = EnergyAccount::new();
        let day_minute0 = (day - cfg.eval_start_day) as usize * MINUTES_PER_DAY;
        let mut seg_start = 0usize;
        while seg_start < MINUTES_PER_DAY {
            let global = day_minute0 + seg_start;
            let next_boundary = ((global / gamma_minutes) + 1) * gamma_minutes;
            let seg_end = (next_boundary - day_minute0).min(MINUTES_PER_DAY);

            // All homes advance through the segment in parallel, each
            // accumulating into its own per-home hour buckets; the fold
            // below runs in home order, exactly as the sequential
            // reference did.
            self.day_ws
                .homes
                .par_iter_mut()
                .zip(self.agents.par_iter_mut())
                .for_each(|(hw, home_agents)| run_segment(cfg, hw, home_agents, seg_end));
            for hw in &self.day_ws.homes {
                for h in 0..24 {
                    self.hourly_saved[h] += hw.saved[h];
                    self.hourly_standby[h] += hw.standby[h];
                }
            }

            // Federation at the boundary (if the day is not over early).
            if seg_end < MINUTES_PER_DAY || next_boundary == day_minute0 + MINUTES_PER_DAY {
                self.fed_round += 1;
                federate(
                    &mut self.agents,
                    federation,
                    &self.bus,
                    &self.cloud,
                    self.fed_round,
                    &policy,
                    cfg.aggregation,
                    &mut self.fed_engine,
                );
            }
            seg_start = seg_end;
        }

        // Collect the day's accounts (each env's account was reset at
        // day load, so it holds exactly this day's figures).
        for (home, hw) in self.day_ws.homes.iter().enumerate() {
            for env in hw.devices.iter().filter_map(|dd| dd.env.as_ref()) {
                day_account.merge(env.account());
                if day >= late_start {
                    self.per_home_late[home].merge(env.account());
                }
            }
        }
        self.total.merge(&day_account);
        self.daily_saved_fraction
            .push(day_account.saved_fraction().unwrap_or(0.0));
        self.daily_saved_kwh_per_client
            .push(day_account.standby_saved_kwh / n as f64);
        self.next_day = day + 1;
    }

    /// Folds the accumulated state into the phase result.
    pub fn into_phase(self, cfg: &SimConfig, train_wall_s: f64) -> EmsPhase {
        let n = cfg.n_residences;
        let comm_bytes = self.bus.stats().bytes
            + self.cloud.stats().upload_bytes
            + self.cloud.stats().download_bytes;
        let comm_s = self.bus.simulated_seconds() + self.cloud.simulated_seconds();
        EmsPhase {
            account: self.total,
            daily_saved_fraction: self.daily_saved_fraction,
            daily_saved_kwh_per_client: self.daily_saved_kwh_per_client,
            hourly_saved_kwh_per_client: self.hourly_saved.iter().map(|v| v / n as f64).collect(),
            hourly_standby_kwh_per_client: self
                .hourly_standby
                .iter()
                .map(|v| v / n as f64)
                .collect(),
            per_home_saved_fraction: self
                .per_home_late
                .iter()
                .map(|a| a.saved_fraction().unwrap_or(0.0))
                .collect(),
            per_home_saved_kwh: self
                .per_home_late
                .iter()
                .map(|a| a.standby_saved_kwh)
                .collect(),
            train_wall_s,
            comm_s,
            comm_bytes,
        }
    }

    /// Captures the complete cross-day state into a snapshot.
    pub fn to_snapshot(
        &self,
        cfg: &SimConfig,
        method: EmsMethod,
        forecast: ForecastState,
    ) -> RunSnapshot {
        RunSnapshot {
            meta: SnapshotMeta {
                config_hash: cfg.run_hash(),
                method: method.name().to_string(),
                next_day: self.next_day,
                fed_round: self.fed_round,
                n_homes: cfg.n_residences as u64,
                n_devices: cfg.devices_per_home() as u64,
            },
            forecast,
            agents: self
                .agents
                .iter()
                .map(|home| home.iter().map(DqnAgent::export_state).collect())
                .collect(),
            transport: TransportState {
                bus: self.bus.export_state(),
                cloud: self.cloud.export_state(),
            },
            metrics: MetricsState {
                total: self.total,
                daily_saved_fraction: self.daily_saved_fraction.clone(),
                daily_saved_kwh_per_client: self.daily_saved_kwh_per_client.clone(),
                hourly_saved: self.hourly_saved.to_vec(),
                hourly_standby: self.hourly_standby.to_vec(),
                per_home_late: self.per_home_late.clone(),
            },
        }
    }

    /// Rebuilds the run state from a decoded snapshot, validating every
    /// shape against `cfg` before any agent is touched. Identity checks
    /// (config hash, method) belong to the caller — this function
    /// assumes they already passed and verifies structure only.
    pub fn from_snapshot(cfg: &SimConfig, snap: &RunSnapshot) -> Result<Self, StoreError> {
        let n = cfg.n_residences;
        let d = cfg.devices_per_home();
        let env_cfg = EnvConfig {
            state_window: cfg.state_window,
        };
        let state_dim = env_cfg.state_dim();

        if snap.meta.n_homes != n as u64 || snap.meta.n_devices != d as u64 {
            return Err(StoreError::State(format!(
                "snapshot is for {}x{} agents, config wants {n}x{d}",
                snap.meta.n_homes, snap.meta.n_devices
            )));
        }
        let end_day = cfg.eval_start_day + cfg.eval_days;
        if snap.meta.next_day < cfg.eval_start_day || snap.meta.next_day > end_day {
            return Err(StoreError::State(format!(
                "snapshot day {} outside evaluation span {}..={end_day}",
                snap.meta.next_day, cfg.eval_start_day
            )));
        }
        let completed = (snap.meta.next_day - cfg.eval_start_day) as usize;
        let m = &snap.metrics;
        if snap.agents.len() != n
            || snap.agents.iter().any(|home| home.len() != d)
            || m.hourly_saved.len() != 24
            || m.hourly_standby.len() != 24
            || m.per_home_late.len() != n
            || m.daily_saved_fraction.len() != completed
            || m.daily_saved_kwh_per_client.len() != completed
        {
            return Err(StoreError::State(
                "snapshot sections disagree about run dimensions".to_string(),
            ));
        }

        let mut agents: Vec<Vec<DqnAgent>> = Vec::with_capacity(n);
        for (home, home_states) in snap.agents.iter().enumerate() {
            let mut row = Vec::with_capacity(d);
            for (device, state) in home_states.iter().enumerate() {
                let mut agent = DqnAgent::new(
                    state_dim,
                    DqnConfig {
                        seed: Self::agent_seed(cfg, home, device),
                        ..cfg.dqn.clone()
                    },
                );
                agent
                    .restore_state(state.clone())
                    .map_err(|e| StoreError::State(format!("agent [{home}][{device}]: {e}")))?;
                row.push(agent);
            }
            agents.push(row);
        }

        let bus = BroadcastBus::with_faults(n, LatencyModel::lan(), &cfg.fault);
        bus.restore_state(&snap.transport.bus)
            .map_err(|e| StoreError::State(format!("bus: {e}")))?;
        let cloud = CloudAggregator::with_faults(LatencyModel::cloud(), &cfg.fault);
        cloud.restore_state(&snap.transport.cloud);

        let mut hourly_saved = [0.0f64; 24];
        hourly_saved.copy_from_slice(&m.hourly_saved);
        let mut hourly_standby = [0.0f64; 24];
        hourly_standby.copy_from_slice(&m.hourly_standby);

        Ok(EmsState {
            agents,
            bus,
            cloud,
            fed_engine: DflRound::new(),
            day_ws: DayWorkspace::default(),
            fed_round: snap.meta.fed_round,
            next_day: snap.meta.next_day,
            total: m.total,
            daily_saved_fraction: m.daily_saved_fraction.clone(),
            daily_saved_kwh_per_client: m.daily_saved_kwh_per_client.clone(),
            hourly_saved,
            hourly_standby,
            per_home_late: m.per_home_late.clone(),
        })
    }
}

/// Runs the EMS over the evaluation span.
pub fn run_ems(cfg: &SimConfig, method: EmsMethod, forecast: &ForecastPhase) -> EmsPhase {
    cfg.validate();
    let started = Instant::now();
    let mut state = EmsState::fresh(cfg);
    while !state.done(cfg) {
        state.advance_day(cfg, method, forecast);
    }
    state.into_phase(cfg, started.elapsed().as_secs_f64())
}

/// Advances one home's episodes to `seg_end`, accumulating (saved,
/// standby) kWh per hour-of-day into the workspace's own buckets
/// (`hw.saved` / `hw.standby`, zeroed here). Steady state performs no
/// heap allocation: episode states live in each device's double
/// buffer, and transition vectors cycle through the home's pool via
/// replay-ring evictions.
fn run_segment(cfg: &SimConfig, hw: &mut HomeWorkspace, agents: &mut [DqnAgent], seg_end: usize) {
    hw.saved = [0.0f64; 24];
    hw.standby = [0.0f64; 24];
    let HomeWorkspace {
        devices,
        pool,
        saved,
        standby,
        ..
    } = hw;
    for (device, dd) in devices.iter_mut().enumerate() {
        let Some(env) = &mut dd.env else { continue };
        let agent = &mut agents[device];
        let mut steps_since_train = 0usize;
        while !env.done() && env.current_minute() < seg_end {
            let minute = env.current_minute();
            let action = agent.act(&dd.cur);
            // Hour-of-day bookkeeping uses ground truth via the account
            // delta (standby saved only changes on standby minutes).
            let before = *env.account();
            let (reward, done) = env.step_into(action, &mut dd.next);
            let after = *env.account();
            let hour = minute / 60;
            saved[hour] += after.standby_saved_kwh - before.standby_saved_kwh;
            standby[hour] += after.standby_total_kwh - before.standby_total_kwh;
            let mut state = pool.pop().unwrap_or_default();
            state.clear();
            state.extend_from_slice(&dd.cur);
            let next_state = if done {
                None
            } else {
                let mut s = pool.pop().unwrap_or_default();
                s.clear();
                s.extend_from_slice(&dd.next);
                Some(s)
            };
            if let Some(evicted) = agent.remember_evict(Transition {
                state,
                action: action.index(),
                reward,
                next_state,
            }) {
                pool.push(evicted.state);
                if let Some(s) = evicted.next_state {
                    pool.push(s);
                }
            }
            steps_since_train += 1;
            if steps_since_train >= cfg.train_every && agent.ready() {
                agent.train_step();
                steps_since_train = 0;
            }
            std::mem::swap(&mut dd.cur, &mut dd.next);
        }
    }
}

/// One federation step over every device's agents.
#[allow(clippy::too_many_arguments)]
fn federate(
    agents: &mut [Vec<DqnAgent>],
    federation: DrlFederation,
    bus: &BroadcastBus,
    cloud: &CloudAggregator,
    round: u64,
    policy: &MergePolicy,
    mode: AggregationMode,
    engine: &mut DflRound,
) {
    let d = agents[0].len();
    match federation {
        DrlFederation::CloudFull => {
            for device in 0..d {
                // Snapshot exports are independent per home; build them
                // in parallel, then upload sequentially in home order so
                // the pending queue (and with it the average order and
                // the fault plan's per-arrival decisions) matches the
                // sequential reference exactly.
                let updates: Vec<_> = agents
                    .par_iter()
                    .enumerate()
                    .map(|(home, home_agents)| {
                        aggregate::snapshot_update(&home_agents[device], home, round, device as u64)
                    })
                    .collect();
                for update in updates {
                    cloud.upload(update);
                }
                cloud.aggregate_with_quorum(policy.min_quorum);
                agents.par_iter_mut().enumerate().for_each(|(home, row)| {
                    // An offline home (or a round with nothing
                    // aggregated yet) keeps its local agent.
                    if let Some(global) = cloud.download_for(home, round) {
                        row[device].import_all(&global);
                    }
                });
            }
        }
        DrlFederation::None => {}
        DrlFederation::LanAlpha(alpha) => {
            for device in 0..d {
                let mut col: Vec<&mut DqnAgent> = agents
                    .iter_mut()
                    .map(|home_agents| &mut home_agents[device])
                    .collect();
                let _ = engine.run(
                    &mut col,
                    &RoundParams {
                        bus,
                        round,
                        model_id: device as u64,
                        alpha: Some(alpha),
                        policy,
                        mode,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::train_forecasters;

    fn tiny_run(method: EmsMethod) -> EmsPhase {
        let cfg = SimConfig::tiny(3);
        let forecast = train_forecasters(&cfg, method);
        run_ems(&cfg, method, &forecast)
    }

    #[test]
    fn federation_modes_match_table_2() {
        assert_eq!(EmsMethod::Local.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Cloud.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Fl.drl_federation(6), DrlFederation::None);
        assert_eq!(EmsMethod::Frl.drl_federation(6), DrlFederation::CloudFull);
        assert_eq!(
            EmsMethod::Pfdrl.drl_federation(6),
            DrlFederation::LanAlpha(6)
        );
    }

    #[test]
    fn local_ems_moves_no_bytes() {
        let phase = tiny_run(EmsMethod::Local);
        assert_eq!(phase.comm_bytes, 0);
        assert!(phase.account.minutes > 0);
        assert_eq!(phase.daily_saved_fraction.len(), 2);
    }

    #[test]
    fn pfdrl_moves_fewer_drl_bytes_than_frl() {
        let pf = tiny_run(EmsMethod::Pfdrl);
        let frl = tiny_run(EmsMethod::Frl);
        assert!(pf.comm_bytes > 0);
        assert!(frl.comm_bytes > 0);
        // With n=3 residences both transports move 6 point-to-point
        // messages per device-round (bus: 3 broadcasts x 2 deliveries;
        // cloud: 3 up + 3 down), but PFDRL's payload is only the alpha
        // base layers, so its total volume must be strictly smaller.
        assert!(
            pf.comm_bytes < frl.comm_bytes,
            "pfdrl bytes {} >= frl bytes {}",
            pf.comm_bytes,
            frl.comm_bytes
        );
    }

    #[test]
    fn saved_energy_is_bounded_by_available_standby() {
        let phase = tiny_run(EmsMethod::Pfdrl);
        assert!(phase.account.standby_saved_kwh <= phase.account.standby_total_kwh + 1e-12);
        let f = phase.account.saved_fraction().unwrap();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn hourly_series_have_24_buckets_and_match_totals() {
        let phase = tiny_run(EmsMethod::Local);
        assert_eq!(phase.hourly_saved_kwh_per_client.len(), 24);
        assert_eq!(phase.hourly_standby_kwh_per_client.len(), 24);
        let n = 3.0;
        let hourly_total: f64 = phase.hourly_saved_kwh_per_client.iter().sum::<f64>() * n;
        assert!(
            (hourly_total - phase.account.standby_saved_kwh).abs() < 1e-9,
            "hourly {hourly_total} vs account {}",
            phase.account.standby_saved_kwh
        );
    }

    #[test]
    fn per_home_fractions_cover_every_home() {
        let phase = tiny_run(EmsMethod::Pfdrl);
        assert_eq!(phase.per_home_saved_fraction.len(), 3);
        for f in &phase.per_home_saved_fraction {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn pfdrl_federation_preserves_personal_layers() {
        // After a run, PFDRL agents share base layers but keep distinct
        // personalization layers.
        let cfg = SimConfig::tiny(5);
        let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
        let _ = run_ems(&cfg, EmsMethod::Pfdrl, &forecast);
        // (Agents are internal to run_ems; the property is asserted at the
        // unit level in pfdrl-fl. Here we just confirm the run completes
        // with sharing enabled — see personalization tests for the
        // layer-level invariant.)
    }
}
