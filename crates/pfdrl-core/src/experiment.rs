//! Experiment runners — one function per table/figure of the paper's
//! evaluation section. Each returns a serializable result the `repro`
//! binary prints and EXPERIMENTS.md records.
//!
//! Callers control the scale through the [`SimConfig`] they pass: the
//! `repro` binary uses experiment-scale configs, the test suite uses
//! `SimConfig::tiny`.

use crate::config::SimConfig;
use crate::eval::evaluate_forecast;
use crate::forecast::train_forecasters;
use crate::method::EmsMethod;
use crate::runner::{run_method, run_method_with_forecast, MethodRun};
use pfdrl_data::{PricePlan, TraceGenerator};
use pfdrl_forecast::metrics::accuracy_cdf;
use pfdrl_forecast::ForecastMethod;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A labelled series of (x, y) points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// x value with the maximum y (ties go to the earliest).
    pub fn argmax(&self) -> f64 {
        assert!(!self.points.is_empty(), "argmax of empty series");
        self.points
            .iter()
            .fold(
                (f64::NAN, f64::MIN),
                |best, &(x, y)| if y > best.1 { (x, y) } else { best },
            )
            .0
    }
}

/// Figure 2: saved standby energy vs number of shared layers α.
pub fn fig2_alpha_sweep(base: &SimConfig, alphas: &[usize]) -> Series {
    let points = alphas
        .iter()
        .map(|&alpha| {
            let mut cfg = base.clone();
            cfg.alpha = alpha;
            let run = run_method(&cfg, EmsMethod::Pfdrl);
            (alpha as f64, run.converged_saved_fraction())
        })
        .collect();
    Series::new("PFDRL saved standby energy", points)
}

/// Figure 3: DFL forecast accuracy vs broadcast frequency β (hours).
pub fn fig3_beta_sweep(base: &SimConfig, betas: &[f64]) -> Series {
    let points = betas
        .iter()
        .map(|&beta| {
            let mut cfg = base.clone();
            cfg.beta_hours = beta;
            let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
            (beta, evaluate_forecast(&cfg, &forecast).mean)
        })
        .collect();
    Series::new("DFL accuracy", points)
}

/// Figure 4: saved standby energy vs DRL broadcast frequency γ (hours).
pub fn fig4_gamma_sweep(base: &SimConfig, gammas: &[f64]) -> Series {
    let points = gammas
        .iter()
        .map(|&gamma| {
            let mut cfg = base.clone();
            cfg.gamma_hours = gamma;
            let run = run_method(&cfg, EmsMethod::Pfdrl);
            (gamma, run.converged_saved_fraction())
        })
        .collect();
    Series::new("PFDRL saved standby energy", points)
}

/// Evaluates all four forecasting algorithms under the DFL architecture.
fn forecast_evals(base: &SimConfig) -> Vec<(ForecastMethod, crate::eval::ForecastEval)> {
    ForecastMethod::ALL
        .iter()
        .map(|&m| {
            let mut cfg = base.clone();
            cfg.forecast_method = m;
            let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
            (m, evaluate_forecast(&cfg, &forecast))
        })
        .collect()
}

/// Figure 5: CDF of per-prediction accuracy for LR/SVM/BP/LSTM.
pub fn fig5_forecast_cdf(base: &SimConfig, cdf_points: usize) -> Vec<Series> {
    forecast_evals(base)
        .into_iter()
        .map(|(m, eval)| {
            let cdf = accuracy_cdf(&eval.accuracies, cdf_points)
                .into_iter()
                .map(|(x, y)| (x * 100.0, y))
                .collect();
            Series::new(m.name(), cdf)
        })
        .collect()
}

/// Figure 6: forecast accuracy by hour of day per algorithm.
pub fn fig6_accuracy_by_hour(base: &SimConfig) -> Vec<Series> {
    forecast_evals(base)
        .into_iter()
        .map(|(m, eval)| {
            let points = eval
                .hourly
                .iter()
                .enumerate()
                .map(|(h, a)| (h as f64, *a))
                .collect();
            Series::new(m.name(), points)
        })
        .collect()
}

/// Figure 7: accuracy vs number of accumulative training days.
pub fn fig7_accuracy_by_days(base: &SimConfig, day_counts: &[u64]) -> Vec<Series> {
    ForecastMethod::ALL
        .iter()
        .map(|&m| {
            let points = day_counts
                .iter()
                .map(|&days| {
                    let mut cfg = base.clone();
                    cfg.forecast_method = m;
                    cfg.train_days = days;
                    cfg.eval_start_day = days;
                    let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
                    (days as f64, evaluate_forecast(&cfg, &forecast).mean)
                })
                .collect();
            Series::new(m.name(), points)
        })
        .collect()
}

/// Figure 8: accuracy vs number of participating residences.
pub fn fig8_accuracy_by_clients(base: &SimConfig, client_counts: &[usize]) -> Vec<Series> {
    ForecastMethod::ALL
        .iter()
        .map(|&m| {
            let points = client_counts
                .iter()
                .map(|&n| {
                    let mut cfg = base.clone();
                    cfg.forecast_method = m;
                    cfg.n_residences = n;
                    let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
                    (n as f64, evaluate_forecast(&cfg, &forecast).mean)
                })
                .collect();
            Series::new(m.name(), points)
        })
        .collect()
}

/// Figures 9/11/14 share full runs of all five methods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodComparison {
    pub runs: Vec<MethodRun>,
}

/// Runs every comparison method once on the same configuration.
pub fn compare_methods(base: &SimConfig) -> MethodComparison {
    let runs = EmsMethod::ALL
        .iter()
        .map(|&m| run_method(base, m))
        .collect();
    MethodComparison { runs }
}

impl MethodComparison {
    pub fn run(&self, method: EmsMethod) -> &MethodRun {
        self.runs
            .iter()
            .find(|r| r.method == method.name())
            .expect("method present in comparison")
    }

    /// Figure 9 series: saved kWh per client per eval day.
    pub fn fig9_series(&self) -> Vec<Series> {
        self.runs
            .iter()
            .map(|r| {
                let points = r
                    .ems
                    .daily_saved_kwh_per_client
                    .iter()
                    .enumerate()
                    .map(|(d, v)| (d as f64 + 1.0, *v))
                    .collect();
                Series::new(r.method.clone(), points)
            })
            .collect()
    }

    /// Figure 9 right axis: saved standby percentage per day.
    pub fn fig9_percentage_series(&self) -> Vec<Series> {
        self.runs
            .iter()
            .map(|r| {
                let points = r
                    .ems
                    .daily_saved_fraction
                    .iter()
                    .enumerate()
                    .map(|(d, v)| (d as f64 + 1.0, *v))
                    .collect();
                Series::new(r.method.clone(), points)
            })
            .collect()
    }

    /// Figure 11 series: saved kWh per client by hour of day.
    pub fn fig11_series(&self) -> Vec<Series> {
        self.runs
            .iter()
            .map(|r| {
                let points = r
                    .ems
                    .hourly_saved_kwh_per_client
                    .iter()
                    .enumerate()
                    .map(|(h, v)| (h as f64, *v))
                    .collect();
                Series::new(r.method.clone(), points)
            })
            .collect()
    }

    /// Figure 14 rows: (method, compute seconds, simulated comm seconds).
    pub fn fig14_rows(&self) -> Vec<OverheadRow> {
        self.runs
            .iter()
            .map(|r| OverheadRow {
                label: r.method.clone(),
                train_s: r.forecast_train_wall_s + r.ems.train_wall_s,
                test_s: 0.0,
                comm_s: r.forecast_comm_s + r.ems.comm_s,
            })
            .collect()
    }
}

/// Figure 10: saved monetary cost per client by month, fixed vs variable
/// tariff. Uses the converged hourly saving profile of a PFDRL run
/// (standby availability is season-flat in the generator, so the hourly
/// profile transfers across months; HVAC seasonality does not enter
/// because HVAC is not EMS-controllable).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// `[month][0=fixed, 1=variable]` saved dollars per client.
    pub monthly_saved_usd: Vec<(f64, f64)>,
}

pub fn fig10_monetary(base: &SimConfig) -> Fig10Result {
    let run = run_method(base, EmsMethod::Pfdrl);
    let days = base.eval_days as f64;
    // kWh saved per client per hour-of-day, per day.
    let hourly_per_day: Vec<f64> = run
        .ems
        .hourly_saved_kwh_per_client
        .iter()
        .map(|v| v / days)
        .collect();
    let gen = TraceGenerator::new(base.generator());
    let _ = gen; // generator kept for future seasonal standby profiles
    let month_days = [
        31.0, 28.0, 31.0, 30.0, 31.0, 30.0, 31.0, 31.0, 30.0, 31.0, 30.0, 31.0,
    ];
    let monthly_saved_usd = (0..12)
        .map(|m| {
            let fixed: f64 = hourly_per_day
                .iter()
                .enumerate()
                .map(|(h, kwh)| PricePlan::FixedRate.cost_cents(*kwh, m, h))
                .sum::<f64>()
                * month_days[m]
                / 100.0;
            let variable: f64 = hourly_per_day
                .iter()
                .enumerate()
                .map(|(h, kwh)| PricePlan::VariableRate.cost_cents(*kwh, m, h))
                .sum::<f64>()
                * month_days[m]
                / 100.0;
            (fixed, variable)
        })
        .collect();
    Fig10Result { monthly_saved_usd }
}

/// Figure 12: personalization ablation — per-home saved energy with the
/// personalized split (PFDRL) vs without (FRL-style full sharing).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    pub personalized_per_home_kwh: Vec<f64>,
    pub not_personalized_per_home_kwh: Vec<f64>,
    pub personalized_mean: f64,
    pub not_personalized_mean: f64,
    pub personalized_std: f64,
    pub not_personalized_std: f64,
}

fn mean_std(v: &[f64]) -> (f64, f64) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
    (mean, var.sqrt())
}

pub fn fig12_personalization(base: &SimConfig) -> Fig12Result {
    let pfdrl = run_method(base, EmsMethod::Pfdrl);
    let frl = run_method(base, EmsMethod::Frl);
    let p = pfdrl.ems.per_home_saved_kwh.clone();
    let np = frl.ems.per_home_saved_kwh.clone();
    let (pm, ps) = mean_std(&p);
    let (nm, ns) = mean_std(&np);
    Fig12Result {
        personalized_per_home_kwh: p,
        not_personalized_per_home_kwh: np,
        personalized_mean: pm,
        not_personalized_mean: nm,
        personalized_std: ps,
        not_personalized_std: ns,
    }
}

/// A time-overhead row for Figures 13/14.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    pub label: String,
    /// Training compute, seconds.
    pub train_s: f64,
    /// Inference compute, seconds.
    pub test_s: f64,
    /// Simulated communication, seconds.
    pub comm_s: f64,
}

impl OverheadRow {
    pub fn total(&self) -> f64 {
        self.train_s + self.test_s + self.comm_s
    }
}

/// Figure 13: load-forecasting time overhead per algorithm (train + test)
/// under the DFL architecture.
pub fn fig13_forecast_overhead(base: &SimConfig) -> Vec<OverheadRow> {
    ForecastMethod::ALL
        .iter()
        .map(|&m| {
            let mut cfg = base.clone();
            cfg.forecast_method = m;
            let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
            let started = Instant::now();
            let _ = evaluate_forecast(&cfg, &forecast);
            let test_s = started.elapsed().as_secs_f64();
            OverheadRow {
                label: m.name().to_string(),
                train_s: forecast.train_wall_s,
                test_s,
                comm_s: forecast.comm_s,
            }
        })
        .collect()
}

/// The headline numbers of §5: load-forecasting accuracy (paper: 92 %
/// with LSTM) and saved standby energy per day (paper: 98 %).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    pub forecast_accuracy: f64,
    pub saved_standby_fraction: f64,
    pub comfort_violation_minutes: u64,
    pub total_minutes: u64,
}

pub fn headline(base: &SimConfig) -> Headline {
    let (run, forecast) = run_method_with_forecast(base, EmsMethod::Pfdrl);
    let eval = evaluate_forecast(base, &forecast);
    Headline {
        forecast_accuracy: eval.mean,
        saved_standby_fraction: run.converged_saved_fraction(),
        comfort_violation_minutes: run.ems.account.comfort_violation_minutes,
        total_minutes: run.ems.account.minutes,
    }
}

/// Table 2 as data: the feature matrix of the five methods.
pub fn table2_rows() -> Vec<(String, bool, bool, bool, bool, bool)> {
    EmsMethod::ALL
        .iter()
        .map(|&m| {
            (
                m.name().to_string(),
                m.stays_in_local_area(),
                m.preserves_privacy(),
                m.small_batch_training(),
                m.shares_ems(),
                m.personalized(),
            )
        })
        .collect()
}

/// One row of the fault-degradation experiment: PFDRL under a given
/// residence-dropout and message-loss rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationRow {
    pub dropout_rate: f64,
    pub loss_rate: f64,
    /// DFL forecast accuracy under these faults.
    pub forecast_accuracy: f64,
    /// Converged standby-energy saved fraction under these faults.
    pub saved_fraction: f64,
    /// `saved_fraction / baseline_saved_fraction` — the share of the
    /// fault-free savings that survives the faults.
    pub retention: f64,
}

/// Graceful-degradation experiment: PFDRL swept over churn and loss
/// rates, against the fault-free baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationResult {
    pub baseline_accuracy: f64,
    pub baseline_saved_fraction: f64,
    pub rows: Vec<DegradationRow>,
}

/// Sweeps PFDRL over `(dropout_rate, loss_rate)` pairs and reports
/// forecast accuracy and standby-energy savings against the fault-free
/// baseline. Quorum/staleness knobs are taken from `base.fault`; only
/// the two rates vary. The fault seed stays fixed so rows differ only
/// in fault intensity, not fault pattern.
///
/// Rows are independent simulations (each gets its own `SimConfig`
/// clone and RNG chain), so they run on the rayon pool via `par_iter`.
/// Because each row is internally deterministic and `collect` preserves
/// input order, the result — down to the serialized JSON bytes — is
/// identical whether the pool is parallel or the vendored sequential
/// shim (a property pinned by a test below).
pub fn degradation_sweep(base: &SimConfig, rates: &[(f64, f64)]) -> DegradationResult {
    use rayon::prelude::*;

    let mut clean = base.clone();
    clean.fault.dropout_rate = 0.0;
    clean.fault.loss_rate = 0.0;
    let (baseline_run, baseline_forecast) = run_method_with_forecast(&clean, EmsMethod::Pfdrl);
    let baseline_accuracy = evaluate_forecast(&clean, &baseline_forecast).mean;
    let baseline_saved_fraction = baseline_run.converged_saved_fraction();

    let rows = rates
        .par_iter()
        .map(|&(dropout_rate, loss_rate)| {
            let mut cfg = base.clone();
            cfg.fault.dropout_rate = dropout_rate;
            cfg.fault.loss_rate = loss_rate;
            let (run, forecast) = run_method_with_forecast(&cfg, EmsMethod::Pfdrl);
            let saved_fraction = run.converged_saved_fraction();
            DegradationRow {
                dropout_rate,
                loss_rate,
                forecast_accuracy: evaluate_forecast(&cfg, &forecast).mean,
                saved_fraction,
                retention: if baseline_saved_fraction > 0.0 {
                    saved_fraction / baseline_saved_fraction
                } else {
                    0.0
                },
            }
        })
        .collect();
    DegradationResult {
        baseline_accuracy,
        baseline_saved_fraction,
        rows,
    }
}

/// One row of the sensor-fault severity sweep: PFDRL under a
/// [`SensorFaultConfig::storm`] of the given severity.
///
/// [`SensorFaultConfig::storm`]: pfdrl_data::SensorFaultConfig::storm
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorFaultRow {
    pub severity: f64,
    /// Device-minutes repaired by forward-fill imputation.
    pub imputed_minutes: u64,
    /// Health state transitions across all homes and days.
    pub health_transitions: u64,
    /// Home-days spent quarantined (withheld from federation uploads).
    pub quarantined_home_days: u64,
    /// Converged standby-energy saved fraction under these faults.
    pub saved_fraction: f64,
    /// `saved_fraction / baseline_saved_fraction` — the share of the
    /// fault-free savings that survives the hostile telemetry.
    pub retention: f64,
}

/// Hostile-telemetry experiment result: PFDRL swept over sensor-fault
/// storm severities, against the fault-free baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorFaultResult {
    pub baseline_saved_fraction: f64,
    pub rows: Vec<SensorFaultRow>,
}

/// Sweeps PFDRL over sensor-fault storm severities and reports imputation
/// and quarantine activity plus standby-energy savings against the
/// fault-free baseline. The fault seed is taken from `base.sensor_fault`
/// and stays fixed, so rows differ only in fault intensity, not fault
/// pattern; health thresholds come from `base.health` unchanged.
///
/// Like [`degradation_sweep`], rows are independent simulations on the
/// rayon pool and the result is byte-identical across runs and pool
/// shapes. A severity-0.0 storm has every rate at zero, so that row
/// collapses to the fault-free configuration and must land on the
/// baseline numbers exactly — the regression canary the CI sweep pins.
pub fn sensor_fault_sweep(base: &SimConfig, severities: &[f64]) -> SensorFaultResult {
    use rayon::prelude::*;

    let mut clean = base.clone();
    clean.sensor_fault = pfdrl_data::SensorFaultConfig {
        seed: base.sensor_fault.seed,
        ..Default::default()
    };
    let baseline_run = run_method(&clean, EmsMethod::Pfdrl);
    let baseline_saved_fraction = baseline_run.converged_saved_fraction();

    let rows = severities
        .par_iter()
        .map(|&severity| {
            let mut cfg = base.clone();
            cfg.sensor_fault =
                pfdrl_data::SensorFaultConfig::storm(base.sensor_fault.seed, severity);
            let run = run_method(&cfg, EmsMethod::Pfdrl);
            let saved_fraction = run.converged_saved_fraction();
            SensorFaultRow {
                severity,
                imputed_minutes: run.ems.imputed_minutes,
                health_transitions: run.ems.health_transitions,
                quarantined_home_days: run.ems.quarantined_home_days,
                saved_fraction,
                retention: if baseline_saved_fraction > 0.0 {
                    saved_fraction / baseline_saved_fraction
                } else {
                    0.0
                },
            }
        })
        .collect();
    SensorFaultResult {
        baseline_saved_fraction,
        rows,
    }
}

/// Ablation: forecast accuracy with and without the time-of-day features
/// (a design choice DESIGN.md calls out — the DRL consumes mode structure
/// that is strongly diurnal).
pub fn ablation_window_size(base: &SimConfig, windows: &[usize]) -> Series {
    let points = windows
        .iter()
        .map(|&w| {
            let mut cfg = base.clone();
            cfg.window = w;
            let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
            (w as f64, evaluate_forecast(&cfg, &forecast).mean)
        })
        .collect();
    Series::new("accuracy vs window", points)
}

/// Ablation: Huber vs MSE is covered at the unit level (pfdrl-nn); here,
/// DQN train-frequency ablation — saved energy vs `train_every`.
pub fn ablation_train_every(base: &SimConfig, values: &[usize]) -> Series {
    let points = values
        .iter()
        .map(|&k| {
            let mut cfg = base.clone();
            cfg.train_every = k;
            let run = run_method(&cfg, EmsMethod::Pfdrl);
            (k as f64, run.converged_saved_fraction())
        })
        .collect();
    Series::new("saved fraction vs train_every", points)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimConfig {
        SimConfig::tiny(31)
    }

    #[test]
    fn series_argmax_picks_peak() {
        let s = Series::new("x", vec![(1.0, 0.2), (2.0, 0.9), (3.0, 0.5)]);
        assert_eq!(s.argmax(), 2.0);
    }

    #[test]
    fn fig2_sweep_runs_over_alphas() {
        let s = fig2_alpha_sweep(&tiny(), &[1, 2]);
        assert_eq!(s.points.len(), 2);
        for (_, y) in &s.points {
            assert!((0.0..=1.0).contains(y));
        }
    }

    #[test]
    fn fig3_sweep_runs_over_betas() {
        let s = fig3_beta_sweep(&tiny(), &[12.0, 24.0]);
        assert_eq!(s.points.len(), 2);
        for (_, y) in &s.points {
            assert!((0.0..=1.0).contains(y), "accuracy {y}");
        }
    }

    #[test]
    fn fig5_cdf_is_monotone_per_method() {
        let cdfs = fig5_forecast_cdf(&tiny(), 6);
        assert_eq!(cdfs.len(), 4);
        for s in &cdfs {
            for w in s.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "{} CDF not monotone", s.label);
            }
        }
    }

    #[test]
    fn fig10_produces_12_months() {
        let r = fig10_monetary(&tiny());
        assert_eq!(r.monthly_saved_usd.len(), 12);
        for (f, v) in &r.monthly_saved_usd {
            assert!(*f >= 0.0 && *v >= 0.0);
        }
    }

    #[test]
    fn fig13_covers_all_methods() {
        let rows = fig13_forecast_overhead(&tiny());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.train_s > 0.0, "{} no training time", r.label);
            assert!(r.test_s > 0.0, "{} no testing time", r.label);
        }
    }

    #[test]
    fn degradation_sweep_reports_rows_and_baseline() {
        let r = degradation_sweep(&tiny(), &[(0.0, 0.0), (0.3, 0.3)]);
        assert_eq!(r.rows.len(), 2);
        assert!((0.0..=1.0).contains(&r.baseline_saved_fraction));
        // The fault-free row must match the baseline almost exactly
        // (same config, same seeds).
        let clean = &r.rows[0];
        assert!((clean.saved_fraction - r.baseline_saved_fraction).abs() < 1e-9);
        assert!((clean.retention - 1.0).abs() < 1e-9);
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.saved_fraction));
            assert!(row.retention >= 0.0);
        }
    }

    #[test]
    fn degradation_sweep_is_byte_identical_across_runs() {
        // The sweep runs rows on the rayon pool; determinism must not
        // depend on scheduling. Two full runs must serialize to the
        // same JSON bytes.
        let rates = [(0.0, 0.0), (0.3, 0.3)];
        let a = serde_json::to_string(&degradation_sweep(&tiny(), &rates)).unwrap();
        let b = serde_json::to_string(&degradation_sweep(&tiny(), &rates)).unwrap();
        assert_eq!(a, b, "degradation sweep JSON differs between runs");
    }

    #[test]
    fn sensor_fault_sweep_reports_rows_and_baseline() {
        let r = sensor_fault_sweep(&tiny(), &[0.0, 0.8]);
        assert_eq!(r.rows.len(), 2);
        assert!((0.0..=1.0).contains(&r.baseline_saved_fraction));
        // Severity 0.0 is the fault-free configuration: bitwise equal to
        // the baseline, with the health machinery fully dormant.
        let clean = &r.rows[0];
        assert_eq!(clean.saved_fraction, r.baseline_saved_fraction);
        assert_eq!(clean.retention, 1.0);
        assert_eq!(clean.imputed_minutes, 0);
        assert_eq!(clean.health_transitions, 0);
        assert_eq!(clean.quarantined_home_days, 0);
        // A severe storm must actually hit the telemetry.
        let storm = &r.rows[1];
        assert!(storm.imputed_minutes > 0, "storm imputed nothing");
        for row in &r.rows {
            assert!((0.0..=1.0).contains(&row.saved_fraction));
            assert!(row.retention >= 0.0);
        }
    }

    #[test]
    fn sensor_fault_sweep_is_byte_identical_across_runs() {
        let severities = [0.0, 0.8];
        let a = serde_json::to_string(&sensor_fault_sweep(&tiny(), &severities)).unwrap();
        let b = serde_json::to_string(&sensor_fault_sweep(&tiny(), &severities)).unwrap();
        assert_eq!(a, b, "sensor fault sweep JSON differs between runs");
    }

    #[test]
    fn table2_matches_method_properties() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 5);
        let pfdrl = rows.last().unwrap();
        assert_eq!(pfdrl.0, "PFDRL");
        assert!(pfdrl.1 && pfdrl.2 && pfdrl.3 && pfdrl.4 && pfdrl.5);
    }
}
