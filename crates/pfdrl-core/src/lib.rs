//! # pfdrl-core
//!
//! The PFDRL system itself: the five compared EMS pipelines (Local,
//! Cloud, FL, FRL, PFDRL), the rayon-parallel neighbourhood simulation
//! driver, and the experiment runners that regenerate every table and
//! figure of the paper.
//!
//! ## Pipeline anatomy
//!
//! 1. **Forecast phase** ([`forecast::train_forecasters`]) — per-device
//!    load forecasters are trained under the method's architecture
//!    (local / centralized cloud / FedAvg / decentralized LAN).
//! 2. **EMS phase** ([`ems::run_ems`]) — DQN agents control device modes
//!    minute by minute over the evaluation days, learning online, with
//!    the method's DRL federation (none / full cloud FedAvg / α-layer
//!    LAN broadcast with personal layers kept local).
//!
//! ## Example
//!
//! ```no_run
//! use pfdrl_core::{SimConfig, EmsMethod, runner::run_method};
//!
//! let cfg = SimConfig::with_seed(7);
//! let run = run_method(&cfg, EmsMethod::Pfdrl);
//! println!("saved {:.1}% of standby energy",
//!          100.0 * run.converged_saved_fraction());
//! ```

pub mod config;
pub mod ems;
pub mod eval;
pub mod experiment;
pub mod forecast;
pub mod method;
pub mod runner;

pub use config::{CheckpointPolicy, HealthPolicy, SimConfig, SupervisionPolicy};
pub use ems::{
    predict_day_into, predict_span_into, DrlFederation, EmsPhase, EmsState, HealthState,
    HomeHealth, PredictDayWorkspace,
};
pub use eval::{evaluate_forecast, ForecastEval};
pub use forecast::{train_forecasters, ForecastPhase};
pub use method::EmsMethod;
pub use pfdrl_fl::AggregationMode;
pub use pfdrl_forecast::Precision;
pub use runner::{
    run_method, run_method_resumable, run_method_resume_from, MethodRun, ResumableRun, RunResult,
};
