//! Forecast-quality evaluation on held-out days — the measurements
//! behind Figures 3 and 5–8.

use crate::config::SimConfig;
use crate::ems::predict_day;
use crate::forecast::ForecastPhase;
use pfdrl_data::TraceGenerator;
use pfdrl_forecast::metrics::{paper_accuracies, DEFAULT_ACCURACY_FLOOR_WATTS};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Forecast accuracy over the evaluation span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForecastEval {
    /// Every per-minute accuracy sample (the Figure 5 CDF input).
    pub accuracies: Vec<f64>,
    /// Mean accuracy.
    pub mean: f64,
    /// Mean accuracy per hour of day (Figure 6).
    pub hourly: Vec<f64>,
}

/// Evaluates trained forecasters on the configured evaluation days.
pub fn evaluate_forecast(cfg: &SimConfig, forecast: &ForecastPhase) -> ForecastEval {
    cfg.validate();
    let gen = TraceGenerator::new(cfg.generator());
    let per_home: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..cfg.n_residences as u64)
        .into_par_iter()
        .map(|home| {
            let hh = gen.household(home);
            let mut accs = Vec::new();
            let mut hour_sum = vec![0.0f64; 24];
            let mut hour_n = vec![0.0f64; 24];
            for device in 0..cfg.devices_per_home() {
                let scale = hh.devices[device].on_watts;
                for day in cfg.eval_start_day..cfg.eval_start_day + cfg.eval_days {
                    let prev = gen.day_trace(home, device, day - 1);
                    let today = gen.day_trace(home, device, day);
                    let pred = predict_day(
                        cfg,
                        forecast.models[home as usize][device].as_ref(),
                        &prev,
                        &today,
                        scale,
                    );
                    // Hourly bucketing needs per-minute alignment, so
                    // compute accuracy minute by minute.
                    for (t, (p, r)) in pred.iter().zip(today.watts.iter()).enumerate() {
                        if *r < DEFAULT_ACCURACY_FLOOR_WATTS {
                            continue;
                        }
                        let a = paper_accuracies(&[*p], &[*r], DEFAULT_ACCURACY_FLOOR_WATTS)[0];
                        accs.push(a);
                        hour_sum[t / 60] += a;
                        hour_n[t / 60] += 1.0;
                    }
                }
            }
            (accs, hour_sum, hour_n)
        })
        .collect();

    let mut accuracies = Vec::new();
    let mut hour_sum = [0.0f64; 24];
    let mut hour_n = [0.0f64; 24];
    for (a, hs, hn) in per_home {
        accuracies.extend(a);
        for h in 0..24 {
            hour_sum[h] += hs[h];
            hour_n[h] += hn[h];
        }
    }
    assert!(
        !accuracies.is_empty(),
        "no accuracy samples — trace entirely off?"
    );
    let mean = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
    let hourly = hour_sum
        .iter()
        .zip(hour_n.iter())
        .map(|(s, n)| if *n > 0.0 { s / n } else { 0.0 })
        .collect();
    ForecastEval {
        accuracies,
        mean,
        hourly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::train_forecasters;
    use crate::method::EmsMethod;

    #[test]
    fn evaluation_produces_sane_numbers() {
        let cfg = SimConfig::tiny(21);
        let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
        let eval = evaluate_forecast(&cfg, &forecast);
        assert!(!eval.accuracies.is_empty());
        assert!((0.0..=1.0).contains(&eval.mean), "mean {}", eval.mean);
        assert_eq!(eval.hourly.len(), 24);
        for (h, a) in eval.hourly.iter().enumerate() {
            assert!((0.0..=1.0).contains(a), "hour {h}: {a}");
        }
    }

    #[test]
    fn trained_beats_local_with_scarce_data() {
        // With the tiny 2-day training span, federated averaging should
        // not be dramatically worse than local; both must be far above
        // zero. (Strict ordering claims are checked at experiment scale.)
        let cfg = SimConfig::tiny(22);
        let fed = evaluate_forecast(&cfg, &train_forecasters(&cfg, EmsMethod::Pfdrl));
        let local = evaluate_forecast(&cfg, &train_forecasters(&cfg, EmsMethod::Local));
        assert!(fed.mean > 0.3, "federated accuracy {}", fed.mean);
        assert!(local.mean > 0.3, "local accuracy {}", local.mean);
    }
}
