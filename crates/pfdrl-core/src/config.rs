//! Simulation configuration shared by every experiment.

use pfdrl_data::dataset::TargetTransform;
use pfdrl_data::{DeviceType, GeneratorConfig, SensorFaultConfig};
use pfdrl_drl::DqnConfig;
use pfdrl_fl::{AggregationMode, FaultConfig, PayloadCodec};
use pfdrl_forecast::{ForecastMethod, Precision, TrainConfig};
use serde::{Deserialize, Serialize};

fn default_dirty_minutes() -> u32 {
    30
}
fn default_quarantine_after_days() -> u32 {
    2
}
fn default_readmit_after_days() -> u32 {
    2
}
fn default_supervision_window_days() -> u64 {
    3
}

/// Per-home telemetry-health policy: when a home counts as dirty, how
/// quickly repeated dirt escalates to quarantine, and how much clean
/// history re-admits it. The thresholds only matter once imputation
/// actually fires, so a fault-free run never transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// A home's day is dirty when at least this many device-minutes
    /// were imputed across its devices.
    #[serde(default = "default_dirty_minutes")]
    pub dirty_minutes: u32,
    /// Consecutive dirty days (while Degraded) before quarantine.
    #[serde(default = "default_quarantine_after_days")]
    pub quarantine_after_days: u32,
    /// Consecutive clean days before a quarantined home is re-admitted
    /// to federation uploads (hysteresis).
    #[serde(default = "default_readmit_after_days")]
    pub readmit_after_days: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            dirty_minutes: default_dirty_minutes(),
            quarantine_after_days: default_quarantine_after_days(),
            readmit_after_days: default_readmit_after_days(),
        }
    }
}

impl HealthPolicy {
    /// Validates threshold sanity.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid policy.
    pub fn validate(&self) {
        assert!(self.dirty_minutes >= 1, "dirty_minutes must be >= 1");
        assert!(
            self.quarantine_after_days >= 1,
            "quarantine_after_days must be >= 1"
        );
        assert!(
            self.readmit_after_days >= 1,
            "readmit_after_days must be >= 1"
        );
    }
}

/// Training-divergence supervision: a windowed loss-explosion detector
/// plus automatic rollback to the last good checkpoint. Disabled by
/// default (`explode_factor == 0`), in which case the runner behaves
/// exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisionPolicy {
    /// A completed day diverges when its fleet mean train loss is
    /// non-finite or exceeds this factor × the trailing-window mean.
    /// `0.0` disables supervision entirely.
    #[serde(default)]
    pub explode_factor: f64,
    /// Trailing window (in completed days) the detector baselines on.
    #[serde(default = "default_supervision_window_days")]
    pub window_days: u64,
}

impl Default for SupervisionPolicy {
    fn default() -> Self {
        SupervisionPolicy {
            explode_factor: 0.0,
            window_days: default_supervision_window_days(),
        }
    }
}

impl SupervisionPolicy {
    /// Whether the divergence supervisor is on.
    pub fn is_active(&self) -> bool {
        self.explode_factor > 0.0
    }

    /// Validates knob sanity.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid policy.
    pub fn validate(&self) {
        assert!(
            self.explode_factor.is_finite() && self.explode_factor >= 0.0,
            "explode_factor must be finite and non-negative"
        );
        assert!(self.window_days >= 1, "window_days must be >= 1");
    }
}

/// Durable-checkpoint policy for crash-recoverable runs.
///
/// Disabled by default (`dir: None`), in which case runs behave exactly
/// as before — nothing touches the filesystem. With a directory set,
/// the resumable runner writes a `PFDS` snapshot after every
/// `every_days`-th completed evaluation day (and always after the last
/// one), keeping the newest `keep_last` snapshots.
///
/// The policy is deliberately excluded from [`SimConfig::run_hash`]:
/// changing only *where or how often* a run checkpoints must not
/// invalidate existing snapshots of that run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Snapshot directory; `None` disables checkpointing entirely.
    pub dir: Option<String>,
    /// Snapshot every this many completed evaluation days (min 1).
    pub every_days: u64,
    /// Snapshots retained after each save (0 = keep all).
    pub keep_last: usize,
    /// Testing hook: hard-abort the process (as a crash would) once
    /// this many evaluation days have completed, right after the day's
    /// checkpoint hook. Lets integration tests and CI prove
    /// kill-and-resume equivalence without external process killing.
    pub abort_after_days: Option<u64>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            dir: None,
            every_days: 1,
            keep_last: 3,
            abort_after_days: None,
        }
    }
}

impl CheckpointPolicy {
    /// Whether checkpointing is active.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }
}

/// Full configuration of one neighbourhood simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Global seed (drives data generation and all model init).
    pub seed: u64,
    /// Number of residences in the federation.
    pub n_residences: usize,
    /// Devices installed per home. Defaults to the controllable,
    /// standby-heavy subset the EMS can act on.
    pub devices: Vec<DeviceType>,
    /// Days of trace used to train forecasters.
    pub train_days: u64,
    /// Days of trace the EMS runs over (evaluation; the DRL also learns
    /// online during these days).
    pub eval_days: u64,
    /// First evaluation day (train days come immediately before).
    pub eval_start_day: u64,
    /// Forecast input window, minutes.
    pub window: usize,
    /// Forecast horizon, minutes.
    pub horizon: usize,
    /// Training-sample stride (subsampling of the minute grid).
    pub stride: usize,
    /// Target-space transform for forecaster inputs/targets.
    pub transform: TargetTransform,
    /// Forecasting algorithm (paper settles on LSTM).
    pub forecast_method: ForecastMethod,
    /// Forecaster training hyperparameters.
    pub train: TrainConfig,
    /// β: forecaster broadcast period, hours.
    pub beta_hours: f64,
    /// γ: DRL base-layer broadcast period, hours.
    pub gamma_hours: f64,
    /// α: number of DRL base (shared) layers.
    pub alpha: usize,
    /// Minutes of (predicted, real) history in the DRL state.
    pub state_window: usize,
    /// DQN hyperparameters.
    pub dqn: DqnConfig,
    /// Take a gradient step every this many environment steps (1 =
    /// paper-faithful; larger = cheaper experiments, same shape).
    pub train_every: usize,
    /// Fault injection for robustness experiments (churn, loss,
    /// stragglers, corruption). Defaults to fault-free, so existing
    /// configs behave exactly as before.
    #[serde(default)]
    pub fault: FaultConfig,
    /// Durable checkpointing (disabled by default; see
    /// [`CheckpointPolicy`]).
    #[serde(default)]
    pub checkpoint: CheckpointPolicy,
    /// How fault-free DFL rounds reduce peer updates. The default
    /// `PerHome` replays the historical per-home merges bit-for-bit;
    /// `SharedSum` switches to the O(N) shared-reduction fast path
    /// (numerically equivalent, but a different float summation order,
    /// so it carries its own canary); `Hierarchical` partitions the
    /// fleet into neighborhood shards that SharedSum locally and
    /// federate aggregate-of-aggregates upward.
    #[serde(default)]
    pub aggregation: AggregationMode,
    /// Federation memory budget, bytes, for the largest reduction
    /// domain (the biggest shard under `Hierarchical`, the whole fleet
    /// under the flat modes). `0` = unlimited. When set, validation
    /// fails early — at config time, with the offending numbers — if
    /// the domain's estimated resident payload exceeds the budget,
    /// instead of OOMing mid-run at fleet scale.
    #[serde(default)]
    pub max_shard_bytes: u64,
    /// Seeded sensor-fault injection into per-home minute streams
    /// (dropouts, stuck-at, spikes, NaN/negative watts, clock skew).
    /// Defaults to inactive — every reading passes through untouched
    /// and runs stay bit-identical to fault-free builds.
    #[serde(default)]
    pub sensor_fault: SensorFaultConfig,
    /// Per-home telemetry-health machine thresholds (imputation dirt,
    /// quarantine escalation, re-admission hysteresis).
    #[serde(default)]
    pub health: HealthPolicy,
    /// Training-divergence supervision + checkpoint rollback. Off by
    /// default.
    #[serde(default)]
    pub supervision: SupervisionPolicy,
    /// Forecast *inference* precision. The default `F64` is the
    /// bitwise-pinned path; `F32Fast` routes prediction through the f32
    /// LSTM mirror and vector transcendentals (deterministic, its own
    /// canary — training, snapshots and federation stay f64 either way).
    #[serde(default)]
    pub precision: Precision,
    /// Federation payload codec. The default `Raw` ships full f64
    /// parameters and is the bitwise-pinned path; `QuantizedI8` and
    /// `TopK` compress every uplink (LAN broadcast, hierarchical shard
    /// links, cloud uploads) — deterministic and resumable, but the
    /// merged values change, so the run hash changes with it.
    #[serde(default)]
    pub compression: PayloadCodec,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            n_residences: 20,
            devices: Self::controllable_devices(),
            train_days: 6,
            eval_days: 8,
            eval_start_day: 6,
            window: 16,
            horizon: 15,
            stride: 7,
            transform: TargetTransform::default(),
            forecast_method: ForecastMethod::Lstm,
            train: TrainConfig::quick(0),
            beta_hours: 12.0,
            gamma_hours: 12.0,
            alpha: 6,
            state_window: 4,
            dqn: DqnConfig::slim(0),
            train_every: 4,
            fault: FaultConfig::default(),
            checkpoint: CheckpointPolicy::default(),
            aggregation: AggregationMode::PerHome,
            max_shard_bytes: 0,
            sensor_fault: SensorFaultConfig::default(),
            health: HealthPolicy::default(),
            supervision: SupervisionPolicy::default(),
            precision: Precision::F64,
            compression: PayloadCodec::Raw,
        }
    }
}

impl SimConfig {
    /// The standby-heavy, controllable devices the EMS acts on.
    pub fn controllable_devices() -> Vec<DeviceType> {
        vec![
            DeviceType::Tv,
            DeviceType::GameConsole,
            DeviceType::Computer,
            DeviceType::SetTopBox,
        ]
    }

    /// Baseline experiment configuration at a given seed.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            train: TrainConfig::quick(seed),
            dqn: DqnConfig::slim(seed),
            ..SimConfig::default()
        }
    }

    /// Small configuration for unit/integration tests (3 homes, 2
    /// devices, short spans, tiny nets).
    pub fn tiny(seed: u64) -> Self {
        let mut dqn = DqnConfig::slim(seed);
        dqn.hidden_layers = 3;
        dqn.hidden_width = 12;
        dqn.warmup = 32;
        dqn.batch = 16;
        SimConfig {
            seed,
            n_residences: 3,
            devices: vec![DeviceType::Tv, DeviceType::GameConsole],
            train_days: 2,
            eval_days: 2,
            eval_start_day: 2,
            window: 8,
            horizon: 5,
            stride: 5,
            transform: TargetTransform::default(),
            forecast_method: ForecastMethod::Lr,
            train: TrainConfig {
                lr: 0.03,
                max_epochs: 8,
                ..TrainConfig::with_seed(seed)
            },
            beta_hours: 12.0,
            gamma_hours: 6.0,
            alpha: 2,
            state_window: 3,
            dqn,
            train_every: 8,
            fault: FaultConfig::default(),
            checkpoint: CheckpointPolicy::default(),
            aggregation: AggregationMode::PerHome,
            max_shard_bytes: 0,
            sensor_fault: SensorFaultConfig::default(),
            health: HealthPolicy::default(),
            supervision: SupervisionPolicy::default(),
            precision: Precision::F64,
            compression: PayloadCodec::Raw,
        }
    }

    /// Number of devices per home.
    pub fn devices_per_home(&self) -> usize {
        self.devices.len()
    }

    /// Feature dimension of the forecaster inputs.
    pub fn feature_dim(&self) -> usize {
        self.window + 2
    }

    /// Underlying data-generator configuration.
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            seed: self.seed,
            devices: self.devices.clone(),
            ..Default::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.n_residences > 0, "need at least one residence");
        assert!(!self.devices.is_empty(), "need at least one device");
        assert!(
            self.train_days > 0 && self.eval_days > 0,
            "need train and eval days"
        );
        assert!(
            self.eval_start_day >= self.train_days,
            "eval must start after the training span"
        );
        assert!(
            self.window >= 2 && self.horizon >= 1,
            "degenerate window/horizon"
        );
        assert!(self.stride >= 1, "stride must be >= 1");
        assert!(
            self.alpha >= 1 && self.alpha <= self.dqn.hidden_layers + 1,
            "alpha {} out of range for a {}-hidden-layer DQN",
            self.alpha,
            self.dqn.hidden_layers
        );
        assert!(self.train_every >= 1, "train_every must be >= 1");
        assert!(
            self.beta_hours > 0.0 && self.gamma_hours > 0.0,
            "periods must be positive"
        );
        assert!(self.state_window >= 1, "state window must be >= 1");
        if let AggregationMode::Hierarchical { shards, .. } = self.aggregation {
            assert!(
                shards >= 1,
                "hierarchical aggregation needs at least one shard"
            );
        }
        if self.max_shard_bytes > 0 {
            // Largest reduction domain: the biggest shard under
            // Hierarchical (round-robin and archetype chunking are both
            // balanced, so ceil(n/k)), the whole fleet under flat modes.
            let domain = match self.aggregation {
                AggregationMode::Hierarchical { shards, .. } => self
                    .n_residences
                    .div_ceil(shards.clamp(1, self.n_residences)),
                _ => self.n_residences,
            } as u64;
            let resident = domain * self.estimated_update_bytes();
            assert!(
                resident <= self.max_shard_bytes,
                "largest federation domain needs ~{} B resident payloads \
                 ({} homes x {} B/update), over max_shard_bytes = {}; \
                 raise the budget or increase the shard count",
                resident,
                domain,
                self.estimated_update_bytes(),
                self.max_shard_bytes
            );
        }
        self.compression.validate();
        self.fault.validate();
        self.sensor_fault.validate();
        self.health.validate();
        self.supervision.validate();
    }

    /// Estimated bytes of one home's LAN federation payload: the α
    /// base layers (weights + biases) of the per-device DQN at the
    /// configured codec's wire size (8 B per f64 under `Raw`) — the
    /// column that dominates resident federation memory. Feeds the
    /// `max_shard_bytes` early guard.
    pub fn estimated_update_bytes(&self) -> u64 {
        let state_dim = 2 * self.state_window + 6;
        let mut dims = vec![state_dim];
        dims.extend(std::iter::repeat_n(
            self.dqn.hidden_width,
            self.dqn.hidden_layers,
        ));
        dims.push(3);
        let end = self.alpha.min(dims.len() - 1);
        (0..end)
            .map(|l| {
                self.compression
                    .payload_layer_bytes(dims[l] * dims[l + 1] + dims[l + 1]) as u64
            })
            .sum()
    }

    /// Stable fingerprint of everything that determines the run's
    /// trajectory — FNV-1a over the canonical JSON serialization with
    /// the checkpoint policy reset to default, so checkpoint knobs
    /// (directory, cadence, abort hooks) never invalidate snapshots.
    ///
    /// Snapshots store this hash; resuming under a different
    /// configuration fails with a typed mismatch instead of silently
    /// producing a hybrid run.
    pub fn run_hash(&self) -> u64 {
        let mut canonical = self.clone();
        canonical.checkpoint = CheckpointPolicy::default();
        let json = serde_json::to_string(&canonical).expect("SimConfig always serializes");
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in json.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate();
    }

    #[test]
    fn tiny_is_valid() {
        SimConfig::tiny(42).validate();
    }

    #[test]
    fn paper_alpha_range_is_accepted() {
        // The paper sweeps alpha over 1..=8 on an 8-hidden-layer net.
        for alpha in 1..=8 {
            let mut cfg = SimConfig::with_seed(0);
            cfg.alpha = alpha;
            cfg.validate();
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn oversized_alpha_rejected() {
        let mut cfg = SimConfig::tiny(0); // 3 hidden layers => 4 total
        cfg.alpha = 5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "eval must start after")]
    fn overlapping_eval_rejected() {
        let mut cfg = SimConfig::tiny(0);
        cfg.eval_start_day = 0;
        cfg.validate();
    }

    #[test]
    fn run_hash_ignores_checkpoint_knobs_only() {
        let base = SimConfig::tiny(5);
        let mut ckpt = base.clone();
        ckpt.checkpoint.dir = Some("/tmp/snaps".into());
        ckpt.checkpoint.every_days = 7;
        ckpt.checkpoint.abort_after_days = Some(1);
        assert_eq!(base.run_hash(), ckpt.run_hash());

        let mut other_seed = base.clone();
        other_seed.seed = 6;
        assert_ne!(base.run_hash(), other_seed.run_hash());

        let mut other_alpha = base.clone();
        other_alpha.alpha = 1;
        assert_ne!(base.run_hash(), other_alpha.run_hash());
    }

    #[test]
    fn aggregation_defaults_to_per_home_and_is_hashed() {
        let base = SimConfig::tiny(5);
        assert_eq!(base.aggregation, AggregationMode::PerHome);
        // The fast path changes float summation order, so it must be
        // part of the run identity.
        let mut shared = base.clone();
        shared.aggregation = AggregationMode::SharedSum;
        assert_ne!(base.run_hash(), shared.run_hash());
    }

    #[test]
    fn hierarchical_mode_is_hashed_and_flat_json_is_unchanged() {
        use pfdrl_fl::ShardAssignment;
        let base = SimConfig::tiny(5);
        // The struct variant must change the run identity — shard
        // topology changes float summation order.
        let mut hier = base.clone();
        hier.aggregation = AggregationMode::Hierarchical {
            shards: 4,
            assignment: ShardAssignment::ArchetypeMix,
        };
        hier.validate();
        assert_ne!(base.run_hash(), hier.run_hash());
        let mut other_shards = hier.clone();
        other_shards.aggregation = AggregationMode::Hierarchical {
            shards: 8,
            assignment: ShardAssignment::ArchetypeMix,
        };
        assert_ne!(hier.run_hash(), other_shards.run_hash());

        // Flat modes still serialize as plain unit-variant strings, so
        // pre-hierarchical configs keep their exact JSON shape.
        let json = serde_json::to_string(&base).unwrap();
        assert!(json.contains("\"aggregation\":\"PerHome\""));
    }

    #[test]
    fn shard_budget_guard_passes_when_sharded() {
        use pfdrl_fl::ShardAssignment;
        let mut cfg = SimConfig::tiny(5);
        cfg.n_residences = 64;
        // One update is a few KiB; 16 shards of 4 homes fit easily.
        cfg.max_shard_bytes = 64 * 1024;
        cfg.aggregation = AggregationMode::Hierarchical {
            shards: 16,
            assignment: ShardAssignment::RoundRobin,
        };
        cfg.validate();
        assert!(cfg.estimated_update_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "max_shard_bytes")]
    fn shard_budget_guard_rejects_oversized_flat_fleet() {
        let mut cfg = SimConfig::tiny(5);
        cfg.n_residences = 100_000;
        cfg.aggregation = AggregationMode::SharedSum;
        cfg.max_shard_bytes = 1024 * 1024; // ~100k homes never fit 1 MiB
        cfg.validate();
    }

    #[test]
    fn precision_defaults_to_f64_and_is_hashed() {
        let base = SimConfig::tiny(5);
        assert_eq!(base.precision, Precision::F64);
        // Reduced-precision inference changes result bits, so it must
        // be part of the run identity (same rule as `SharedSum`).
        let mut fast = base.clone();
        fast.precision = Precision::F32Fast;
        assert_ne!(base.run_hash(), fast.run_hash());
    }

    #[test]
    fn compression_defaults_to_raw_and_is_hashed() {
        let base = SimConfig::tiny(5);
        assert_eq!(base.compression, PayloadCodec::Raw);
        // Compressed uplinks change the merged parameter bits, so the
        // codec must be part of the run identity (same rule as
        // `precision` and `SharedSum`).
        let mut q8 = base.clone();
        q8.compression = PayloadCodec::QuantizedI8 {
            per_layer_scale: true,
        };
        assert_ne!(base.run_hash(), q8.run_hash());
        let mut topk = base.clone();
        topk.compression = PayloadCodec::TopK { fraction: 0.1 };
        assert_ne!(base.run_hash(), topk.run_hash());
        assert_ne!(q8.run_hash(), topk.run_hash());
    }

    #[test]
    fn compressed_codecs_shrink_the_estimated_update_bytes() {
        let base = SimConfig::tiny(5);
        let mut q8 = base.clone();
        q8.compression = PayloadCodec::QuantizedI8 {
            per_layer_scale: true,
        };
        let mut topk = base.clone();
        topk.compression = PayloadCodec::TopK { fraction: 0.1 };
        assert!(q8.estimated_update_bytes() < base.estimated_update_bytes());
        assert!(topk.estimated_update_bytes() < base.estimated_update_bytes());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_topk_fraction_fails_validation() {
        let mut cfg = SimConfig::tiny(5);
        cfg.compression = PayloadCodec::TopK { fraction: 0.0 };
        cfg.validate();
    }

    #[test]
    fn checkpointing_is_off_by_default() {
        assert!(!SimConfig::default().checkpoint.enabled());
        let policy = CheckpointPolicy::default();
        assert_eq!(policy.every_days, 1);
        assert_eq!(policy.keep_last, 3);
        assert_eq!(policy.abort_after_days, None);
    }

    #[test]
    fn hostile_telemetry_knobs_default_inert_and_are_hashed() {
        let base = SimConfig::tiny(5);
        assert!(!base.sensor_fault.is_active());
        assert!(!base.supervision.is_active());

        // Corrupted streams change the world the agents see.
        let mut faulty = base.clone();
        faulty.sensor_fault = SensorFaultConfig::storm(1, 0.1);
        assert_ne!(base.run_hash(), faulty.run_hash());

        // Supervision changes training trajectories (rollbacks).
        let mut supervised = base.clone();
        supervised.supervision.explode_factor = 10.0;
        assert!(supervised.supervision.is_active());
        assert_ne!(base.run_hash(), supervised.run_hash());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_sensor_rate_rejected() {
        let mut cfg = SimConfig::tiny(0);
        cfg.sensor_fault.dropout_rate = 1.5;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "explode_factor")]
    fn negative_explode_factor_rejected() {
        let mut cfg = SimConfig::tiny(0);
        cfg.supervision.explode_factor = -1.0;
        cfg.validate();
    }

    #[test]
    fn controllable_devices_are_controllable_with_standby() {
        for d in SimConfig::controllable_devices() {
            let spec = d.nominal_spec();
            assert!(spec.controllable, "{d:?}");
            assert!(spec.has_standby(), "{d:?}");
        }
    }
}
