//! Phase 1 of every pipeline: training the per-device load forecasters
//! under each method's architecture (Table 2, "Load Forecasting" column).
//!
//! * **Local** — every home trains alone on its own data.
//! * **Cloud** — raw data is pooled on a central server, one global model
//!   per device type is trained there and pushed to every home.
//! * **FL / FRL** — FedAvg rounds through a central parameter server.
//! * **PFDRL** — the same FedAvg math, but decentralized: snapshots are
//!   broadcast between residences over the LAN bus (Algorithm 1).

use crate::config::SimConfig;
use crate::method::EmsMethod;
use pfdrl_data::dataset::build_windows_transformed;
use pfdrl_data::{SupervisedSet, TraceGenerator, MINUTES_PER_DAY};
use pfdrl_fl::{
    aggregate, BroadcastBus, CloudAggregator, DflRound, HierParams, LatencyModel, RoundParams,
};
use pfdrl_forecast::{Forecaster, TrainConfig};
use rayon::prelude::*;
use std::time::Instant;

/// Result of the forecaster-training phase.
pub struct ForecastPhase {
    /// Trained forecasters, `[home][device]`.
    pub models: Vec<Vec<Box<dyn Forecaster>>>,
    /// Wall-clock compute time, seconds.
    pub train_wall_s: f64,
    /// Simulated communication time, seconds.
    pub comm_s: f64,
    /// Bytes moved over the (simulated) network (wire size, i.e. after
    /// any payload compression).
    pub comm_bytes: u64,
    /// Bytes the same traffic would occupy uncompressed. Equal to
    /// `comm_bytes` under the default `Raw` codec.
    pub comm_logical_bytes: u64,
}

impl ForecastPhase {
    /// Captures the trained weights and phase costs for a snapshot.
    pub fn export_state(&self) -> pfdrl_store::ForecastState {
        pfdrl_store::ForecastState {
            train_wall_s: self.train_wall_s,
            comm_s: self.comm_s,
            comm_bytes: self.comm_bytes,
            comm_logical_bytes: self.comm_logical_bytes,
            weights: self
                .models
                .iter()
                .map(|home| home.iter().map(|m| m.export_all()).collect())
                .collect(),
        }
    }

    /// Rebuilds the phase from snapshotted weights: fresh models are
    /// constructed with the run's deterministic seeds, every layer
    /// shape is validated against the snapshot, then the trained
    /// weights are imported. Restoring (instead of retraining) keeps
    /// the resumed run bit-identical to the uninterrupted one.
    pub fn from_state(
        cfg: &SimConfig,
        state: &pfdrl_store::ForecastState,
    ) -> Result<Self, pfdrl_store::StoreError> {
        use pfdrl_store::StoreError;

        let mut models = fresh_models(cfg);
        if state.weights.len() != models.len()
            || state
                .weights
                .iter()
                .zip(&models)
                .any(|(sw, mw)| sw.len() != mw.len())
        {
            return Err(StoreError::State(format!(
                "snapshot has forecasters for {} homes, config wants {}",
                state.weights.len(),
                models.len()
            )));
        }
        for (home, (home_weights, home_models)) in
            state.weights.iter().zip(models.iter_mut()).enumerate()
        {
            for (device, (weights, model)) in
                home_weights.iter().zip(home_models.iter_mut()).enumerate()
            {
                let ok = weights.len() == model.layer_count()
                    && weights
                        .iter()
                        .enumerate()
                        .all(|(i, l)| l.len() == model.layer_param_count(i));
                if !ok {
                    return Err(StoreError::State(format!(
                        "forecaster [{home}][{device}] weight shapes do not match the \
                         configured {:?} architecture",
                        cfg.forecast_method
                    )));
                }
                model.import_all(weights);
            }
        }
        Ok(ForecastPhase {
            models,
            train_wall_s: state.train_wall_s,
            comm_s: state.comm_s,
            comm_bytes: state.comm_bytes,
            comm_logical_bytes: state.comm_logical_bytes,
        })
    }
}

/// Builds the supervised training set for one home-device pair over the
/// configured training span.
pub fn training_set(
    cfg: &SimConfig,
    gen: &TraceGenerator,
    home: u64,
    device: usize,
) -> SupervisedSet {
    let start = cfg.eval_start_day - cfg.train_days;
    let watts = gen.multi_day_watts(home, device, start..cfg.eval_start_day);
    let scale = gen.household(home).devices[device].on_watts;
    let start_minute = (start as usize * MINUTES_PER_DAY) % MINUTES_PER_DAY; // always 0, kept for clarity
    build_windows_transformed(
        &watts,
        scale,
        cfg.window,
        cfg.horizon,
        start_minute,
        cfg.transform,
    )
    .strided(cfg.stride)
}

fn fresh_models(cfg: &SimConfig) -> Vec<Vec<Box<dyn Forecaster>>> {
    (0..cfg.n_residences)
        .map(|home| {
            (0..cfg.devices_per_home())
                .map(|device| {
                    let seed = cfg
                        .seed
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add((home as u64) << 17)
                        .wrapping_add(device as u64);
                    let train = TrainConfig {
                        seed,
                        ..cfg.train.clone()
                    };
                    let mut model = cfg.forecast_method.build(cfg.feature_dim(), train);
                    // Inference precision is part of the run identity;
                    // backends without a reduced-precision path ignore
                    // it. Set before any fit/import so the f32 mirror
                    // tracks every subsequent weight mutation.
                    model.set_precision(cfg.precision);
                    model
                })
                .collect()
        })
        .collect()
}

/// Number of federation rounds implied by the broadcast period β over the
/// training span, and the per-round epoch budget. The total epoch budget
/// is held (approximately) constant across β so the sweep isolates the
/// *frequency* effect: very small β means averaging after every epoch
/// (cold-start optimizers, half-trained models), large β means few
/// aggregations.
pub fn rounds_for_beta(cfg: &SimConfig) -> (usize, usize) {
    let train_hours = cfg.train_days as f64 * 24.0;
    let raw_rounds = (train_hours / cfg.beta_hours).floor().max(1.0) as usize;
    let rounds = raw_rounds.clamp(1, cfg.train.max_epochs.max(1) * 2);
    let epochs_per_round = (cfg.train.max_epochs / rounds).max(1);
    (rounds, epochs_per_round)
}

/// Trains the forecasters for `method`. See the module docs for the
/// per-method architecture.
pub fn train_forecasters(cfg: &SimConfig, method: EmsMethod) -> ForecastPhase {
    cfg.validate();
    let gen = TraceGenerator::new(cfg.generator());
    // Build all training sets up front (shared across architectures).
    let started = Instant::now();
    let sets: Vec<Vec<SupervisedSet>> = (0..cfg.n_residences as u64)
        .into_par_iter()
        .map(|home| {
            (0..cfg.devices_per_home())
                .map(|device| training_set(cfg, &gen, home, device))
                .collect()
        })
        .collect();
    let mut models = fresh_models(cfg);

    let (comm_s, comm_bytes, comm_logical_bytes) = match method {
        EmsMethod::Local => {
            // Solo training: each home must converge on its own; give it
            // the full epoch budget in one uninterrupted fit.
            models
                .par_iter_mut()
                .zip(sets.par_iter())
                .for_each(|(home_models, home_sets)| {
                    for (m, s) in home_models.iter_mut().zip(home_sets.iter()) {
                        m.fit(s);
                    }
                });
            (0.0, 0, 0)
        }
        EmsMethod::Cloud => train_cloud(cfg, &sets, &mut models),
        EmsMethod::Fl | EmsMethod::Frl => train_fedavg_cloud(cfg, &sets, &mut models),
        EmsMethod::Pfdrl => train_dfl_lan(cfg, &sets, &mut models),
    };

    let train_wall_s = started.elapsed().as_secs_f64();
    ForecastPhase {
        models,
        train_wall_s,
        comm_s,
        comm_bytes,
        comm_logical_bytes,
    }
}

/// Cloud baseline: raw data pooled per device type, one global model
/// trained centrally, pushed to every home.
fn train_cloud(
    cfg: &SimConfig,
    sets: &[Vec<SupervisedSet>],
    models: &mut [Vec<Box<dyn Forecaster>>],
) -> (f64, u64, u64) {
    let latency = LatencyModel::cloud();
    // Raw-data upload: every sample (features + target) leaves the home.
    let mut upload_bytes: u64 = 0;
    for home_sets in sets {
        for s in home_sets {
            upload_bytes += (s.len() * (s.feature_dim() + 1) * 8) as u64;
        }
    }
    let uploads = (sets.len() * cfg.devices_per_home()) as u64;

    // One pooled model per device slot, trained on the concatenation.
    let pooled: Vec<SupervisedSet> = (0..cfg.devices_per_home())
        .map(|device| {
            let template = &sets[0][device];
            let mut inputs = Vec::new();
            let mut targets = Vec::new();
            for home_sets in sets {
                inputs.extend_from_slice(&home_sets[device].inputs);
                targets.extend_from_slice(&home_sets[device].targets);
            }
            SupervisedSet {
                inputs,
                targets,
                window: template.window,
                horizon: template.horizon,
                scale: template.scale,
                transform: template.transform,
            }
        })
        .collect();

    let global: Vec<Vec<Vec<f64>>> = pooled
        .par_iter()
        .enumerate()
        .map(|(device, set)| {
            let train = TrainConfig {
                seed: cfg.seed.wrapping_add(device as u64),
                ..cfg.train.clone()
            };
            let mut model = cfg.forecast_method.build(cfg.feature_dim(), train);
            model.fit(set);
            model.export_all()
        })
        .collect();

    // Every home downloads every device's global model.
    let mut download_bytes: u64 = 0;
    for home_models in models.iter_mut() {
        for (device, m) in home_models.iter_mut().enumerate() {
            m.import_all(&global[device]);
            download_bytes += global[device]
                .iter()
                .map(|l| 8 * l.len() as u64 + 16)
                .sum::<u64>()
                + 32;
        }
    }
    let downloads = (models.len() * cfg.devices_per_home()) as u64;
    let secs = latency.seconds(uploads + downloads, upload_bytes + download_bytes);
    // Raw-data pooling moves samples, not model payloads — the codec
    // never applies, so wire and logical bytes coincide.
    let total = upload_bytes + download_bytes;
    (secs, total, total)
}

/// FL baseline: FedAvg rounds through a central parameter server.
fn train_fedavg_cloud(
    cfg: &SimConfig,
    sets: &[Vec<SupervisedSet>],
    models: &mut [Vec<Box<dyn Forecaster>>],
) -> (f64, u64, u64) {
    let (rounds, epochs_per_round) = rounds_for_beta(cfg);
    let round_cfg = TrainConfig {
        max_epochs: epochs_per_round,
        ..cfg.train.clone()
    };
    let clouds: Vec<CloudAggregator> = (0..cfg.devices_per_home())
        .map(|_| CloudAggregator::with_codec(LatencyModel::cloud(), &cfg.fault, cfg.compression))
        .collect();
    let quorum = cfg.fault.min_quorum.max(1);
    for round in 0..rounds {
        models
            .par_iter_mut()
            .zip(sets.par_iter())
            .for_each(|(home_models, home_sets)| {
                for (m, s) in home_models.iter_mut().zip(home_sets.iter()) {
                    refit(m.as_mut(), s, &round_cfg);
                }
            });
        for (home_id, home_models) in models.iter().enumerate() {
            for (device, m) in home_models.iter().enumerate() {
                clouds[device].upload(aggregate::snapshot_update(
                    m.as_ref(),
                    home_id,
                    round as u64,
                    device as u64,
                ));
            }
        }
        for (device, cloud) in clouds.iter().enumerate() {
            cloud.aggregate_with_quorum(quorum);
            // Downloads touch only commutative integer counters and
            // share the global model by `Arc`, so homes can pull and
            // import concurrently.
            models
                .par_iter_mut()
                .enumerate()
                .for_each(|(home_id, home_models)| {
                    // A home that cannot download (offline, or nothing
                    // aggregated yet) keeps its local model for this round.
                    if let Some(global) = cloud.download_for(home_id, round as u64) {
                        home_models[device].import_all(&global);
                    }
                });
        }
    }
    let secs: f64 = clouds.iter().map(|c| c.simulated_seconds()).sum();
    let bytes: u64 = clouds
        .iter()
        .map(|c| c.stats().upload_bytes + c.stats().download_bytes)
        .sum();
    let logical: u64 = clouds
        .iter()
        .map(|c| c.stats().logical_upload_bytes + c.stats().download_bytes)
        .sum();
    (secs, bytes, logical)
}

/// PFDRL's DFL: the same FedAvg math, but over the LAN broadcast bus —
/// no cloud party ever holds the model (Algorithm 1).
fn train_dfl_lan(
    cfg: &SimConfig,
    sets: &[Vec<SupervisedSet>],
    models: &mut [Vec<Box<dyn Forecaster>>],
) -> (f64, u64, u64) {
    let (rounds, epochs_per_round) = rounds_for_beta(cfg);
    let round_cfg = TrainConfig {
        max_epochs: epochs_per_round,
        ..cfg.train.clone()
    };
    // Hierarchical mode carries its own per-shard buses; the flat bus
    // set stays empty so traffic is not double-counted.
    let mut hier = crate::ems::EmsState::build_hier(cfg);
    let buses: Vec<BroadcastBus> = if hier.is_some() {
        Vec::new()
    } else {
        (0..cfg.devices_per_home())
            .map(|_| {
                BroadcastBus::with_codec(
                    cfg.n_residences,
                    LatencyModel::lan(),
                    &cfg.fault,
                    cfg.compression,
                )
            })
            .collect()
    };
    let policy = cfg.fault.merge_policy();
    let mut engine = DflRound::new();
    for round in 0..rounds {
        models
            .par_iter_mut()
            .zip(sets.par_iter())
            .for_each(|(home_models, home_sets)| {
                for (m, s) in home_models.iter_mut().zip(home_sets.iter()) {
                    refit(m.as_mut(), s, &round_cfg);
                }
            });
        // One engine round per device bus: pooled parallel exports,
        // broadcasts in home order (so each bus sees the exact event
        // sequence of the sequential reference), then per-home parallel
        // merges — or the O(N) shared reduction when the round is
        // fault-free and `SharedSum` is selected. Corrupted or stale
        // updates are rejected inside the validated merge; a layer that
        // misses the quorum keeps the local parameters this round.
        for device in 0..cfg.devices_per_home() {
            let mut col: Vec<&mut dyn Forecaster> = models
                .iter_mut()
                .map(|home_models| home_models[device].as_mut())
                .collect();
            if let Some(h) = hier.as_mut() {
                // Two-level topology: each neighborhood shard runs a
                // local reduction, then the fleet merges the
                // population-weighted aggregate of aggregates.
                let _ = h.run(
                    &mut col,
                    &HierParams {
                        round: round as u64,
                        model_id: device as u64,
                        alpha: None,
                        policy: &policy,
                        participants: None,
                    },
                );
            } else {
                let _ = engine.run(
                    &mut col,
                    &RoundParams {
                        bus: &buses[device],
                        round: round as u64,
                        model_id: device as u64,
                        alpha: None,
                        policy: &policy,
                        mode: cfg.aggregation,
                        participants: None,
                    },
                );
            }
        }
    }
    match &hier {
        Some(h) => {
            let s = h.total_stats();
            (h.simulated_seconds(), s.bytes, s.logical_bytes)
        }
        None => (
            buses.iter().map(|b| b.simulated_seconds()).sum(),
            buses.iter().map(|b| b.stats().bytes).sum(),
            buses.iter().map(|b| b.stats().logical_bytes).sum(),
        ),
    }
}

/// One federated-round refit with a bounded epoch budget.
fn refit(model: &mut dyn Forecaster, set: &SupervisedSet, round_cfg: &TrainConfig) {
    let _ = model.fit_budget(set, round_cfg.max_epochs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfdrl_forecast::metrics::paper_accuracy;

    fn tiny() -> SimConfig {
        SimConfig::tiny(11)
    }

    #[test]
    fn rounds_for_beta_tracks_frequency() {
        let mut cfg = tiny(); // 2 train days = 48 h, max_epochs 4
        cfg.beta_hours = 12.0;
        let (r12, _) = rounds_for_beta(&cfg);
        cfg.beta_hours = 24.0;
        let (r24, _) = rounds_for_beta(&cfg);
        cfg.beta_hours = 0.5;
        let (r05, e05) = rounds_for_beta(&cfg);
        assert!(r12 > r24);
        assert!(r05 >= r12);
        assert_eq!(e05, 1, "tiny beta must leave only single-epoch rounds");
    }

    #[test]
    fn local_training_produces_distinct_models() {
        let phase = train_forecasters(&tiny(), EmsMethod::Local);
        assert_eq!(phase.comm_bytes, 0);
        assert_eq!(phase.comm_s, 0.0);
        let a = phase.models[0][0].export_all();
        let b = phase.models[1][0].export_all();
        assert_ne!(a, b, "local models must stay personal");
    }

    #[test]
    fn cloud_training_produces_identical_models() {
        let phase = train_forecasters(&tiny(), EmsMethod::Cloud);
        assert!(phase.comm_bytes > 0);
        let a = phase.models[0][0].export_all();
        let b = phase.models[2][0].export_all();
        assert_eq!(a, b, "cloud pushes one global model to every home");
    }

    #[test]
    fn fedavg_ends_in_consensus() {
        let phase = train_forecasters(&tiny(), EmsMethod::Fl);
        let a = phase.models[0][1].export_all();
        let b = phase.models[1][1].export_all();
        assert_eq!(
            a, b,
            "a FedAvg round ends with everyone on the global model"
        );
    }

    #[test]
    fn dfl_ends_in_consensus_without_cloud() {
        let phase = train_forecasters(&tiny(), EmsMethod::Pfdrl);
        let a = phase.models[0][0].export_all();
        let b = phase.models[2][0].export_all();
        // merge_updates averages own + received, so after a synchronous
        // round every home holds the same average.
        for (la, lb) in a.iter().zip(b.iter()) {
            for (x, y) in la.iter().zip(lb.iter()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
        assert!(phase.comm_bytes > 0);
    }

    #[test]
    fn raw_data_upload_dwarfs_model_upload() {
        let cloud = train_forecasters(&tiny(), EmsMethod::Cloud);
        let fl = train_forecasters(&tiny(), EmsMethod::Fl);
        assert!(
            cloud.comm_bytes > fl.comm_bytes / 4,
            "cloud {} vs fl {}",
            cloud.comm_bytes,
            fl.comm_bytes
        );
    }

    #[test]
    fn trained_models_beat_untrained_on_accuracy() {
        let cfg = tiny();
        let gen = TraceGenerator::new(cfg.generator());
        let phase = train_forecasters(&cfg, EmsMethod::Pfdrl);
        let set = training_set(&cfg, &gen, 0, 0);
        let trained_preds: Vec<f64> = phase.models[0][0]
            .predict(&set.inputs)
            .iter()
            .map(|p| set.to_watts(*p))
            .collect();
        let real: Vec<f64> = set.targets.iter().map(|t| set.to_watts(*t)).collect();
        let fresh = cfg
            .forecast_method
            .build(cfg.feature_dim(), cfg.train.clone());
        let fresh_preds: Vec<f64> = fresh
            .predict(&set.inputs)
            .iter()
            .map(|p| set.to_watts(*p))
            .collect();
        let trained_acc = paper_accuracy(&trained_preds, &real, 1.0).unwrap();
        let fresh_acc = paper_accuracy(&fresh_preds, &real, 1.0).unwrap();
        assert!(
            trained_acc > fresh_acc,
            "training did not help: {trained_acc} vs untrained {fresh_acc}"
        );
    }
}
