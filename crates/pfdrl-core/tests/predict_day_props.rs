//! Property tests pinning the streaming day featurizer
//! (`predict_day_into`) to the allocating `predict_day` oracle —
//! *bitwise*, via `f64::to_bits`, across randomized windows, horizons,
//! target transforms, scales, traces and forecaster backends.
//!
//! `predict_day_into` encodes the shared window span once and hands the
//! forecaster one flat matrix; the oracle encodes every window
//! independently and goes through `Vec<Vec<f64>>`. Any drift in row
//! contents, feature order, encode/decode placement or clamping shows
//! up here as a flipped bit.

use pfdrl_core::ems::{predict_day, predict_day_into, PredictDayWorkspace};
use pfdrl_core::SimConfig;
use pfdrl_data::dataset::TargetTransform;
use pfdrl_data::{DayTrace, Mode, MINUTES_PER_DAY};
use pfdrl_forecast::{
    BpNetwork, Forecaster, LinearRegressor, LstmForecaster, SvrConfig, SvrRegressor, TrainConfig,
};
use proptest::prelude::*;

/// splitmix64, same shape as the `pfdrl-forecast` predict props: one
/// sampled seed drives all derived structure.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        self.next() as f64 / u64::MAX as f64
    }

    /// Plausible watt readings with a sprinkle of exact zeros (the
    /// standby floor) so zero-skip branches in the kernels get hit.
    fn day(&mut self) -> DayTrace {
        let watts = (0..MINUTES_PER_DAY)
            .map(|_| {
                if self.below(12) == 0 {
                    0.0
                } else {
                    self.unit() * 220.0
                }
            })
            .collect();
        DayTrace {
            modes: vec![Mode::Standby; MINUTES_PER_DAY],
            watts,
        }
    }
}

fn bits_match(x: f64, y: f64) -> bool {
    x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
}

/// Randomizes a forecaster's weights so the comparison is not against a
/// degenerate all-zero initialization.
fn scramble_params(model: &mut dyn Forecaster, g: &mut Gen) {
    for layer in 0..model.layer_count() {
        let vals: Vec<f64> = (0..model.layer_param_count(layer))
            .map(|_| g.unit() * 2.0 - 1.0)
            .collect();
        model.import_layer(layer, &vals);
    }
}

fn build_backend(which: u64, dim: usize, g: &mut Gen) -> Box<dyn Forecaster> {
    let cfg = TrainConfig::with_seed(g.below(1024));
    let mut model: Box<dyn Forecaster> = match which {
        0 => Box::new(LinearRegressor::new(dim, cfg)),
        1 => Box::new(BpNetwork::new(dim, cfg)),
        2 => Box::new(SvrRegressor::new(
            dim,
            SvrConfig {
                train: cfg,
                ..Default::default()
            },
        )),
        // Small hidden width keeps 96 full-day unrolls cheap; the
        // inference path is width-agnostic.
        _ => Box::new(LstmForecaster::with_hidden(dim, 8, cfg)),
    };
    scramble_params(model.as_mut(), g);
    model
}

proptest! {
    #[test]
    fn predict_day_into_matches_oracle_bitwise(
        seed in 0u64..u64::MAX,
        window in 1usize..24,
        horizon in 1usize..46,
    ) {
        let g = &mut Gen(seed);
        let transform = if g.below(2) == 0 {
            TargetTransform::Linear
        } else {
            TargetTransform::Log { k: 1.0 + g.unit() * 200.0 }
        };
        let cfg = SimConfig {
            window,
            horizon,
            transform,
            ..SimConfig::default()
        };
        let scale = 10.0 + g.unit() * 300.0;
        let prev = g.day();
        let today = g.day();
        let model = build_backend(g.below(4), window + 2, g);

        let want = predict_day(&cfg, model.as_ref(), &prev, &today, scale);
        let mut ws = PredictDayWorkspace::default();
        let mut got = vec![f64::NAN; 3]; // stale contents must be cleared
        // Run twice through the same workspace: the second pass reuses
        // every buffer at full size (the steady-state path).
        for _ in 0..2 {
            predict_day_into(&cfg, model.as_ref(), &prev, &today, scale, &mut ws, &mut got);
        }

        prop_assert_eq!(want.len(), got.len());
        prop_assert_eq!(got.len(), MINUTES_PER_DAY);
        for (i, (&x, &y)) in want.iter().zip(&got).enumerate() {
            prop_assert!(
                bits_match(x, y),
                "{}: minute {} differs: {:?} ({:#018x}) vs {:?} ({:#018x})",
                model.method_name(), i, x, x.to_bits(), y, y.to_bits()
            );
        }
    }
}
