//! Crash-recovery acceptance tests: a run resumed from any snapshot must
//! reproduce the uninterrupted run bit for bit — including under an
//! active deterministic fault plan with parked straggler queues in
//! flight at the checkpoint boundary.

use pfdrl_core::{
    run_method, run_method_resumable, run_method_resume_from, CheckpointPolicy, EmsMethod,
    RunResult, SimConfig,
};
use pfdrl_fl::FaultConfig;
use pfdrl_store::{CheckpointStore, StoreError};
use std::fs;
use std::path::{Path, PathBuf};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfdrl-resume-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn checkpointed(cfg: &SimConfig, dir: &Path) -> SimConfig {
    let mut cfg = cfg.clone();
    cfg.checkpoint = CheckpointPolicy {
        dir: Some(dir.to_string_lossy().into_owned()),
        every_days: 1,
        keep_last: 0, // keep every snapshot so we can resume from each
        abort_after_days: None,
    };
    cfg
}

/// Canonical equality for run outcomes: the serialized form is what the
/// repro CLI emits, so JSON-string identity is the bar the paper
/// artifacts must meet.
fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(a, b, "{what}: RunResult diverged");
    assert_eq!(
        serde_json::to_string(a).unwrap(),
        serde_json::to_string(b).unwrap(),
        "{what}: JSON forms diverged"
    );
}

/// Runs `cfg` uninterrupted, then checkpointed, then resumes from every
/// snapshot the checkpointed run left behind — all outcomes must be
/// bit-identical.
fn exercise_resume_matrix(cfg: &SimConfig, method: EmsMethod, tag: &str) {
    let reference = run_method(cfg, method).result();

    let dir = tmp_dir(tag);
    let ckpt_cfg = checkpointed(cfg, &dir);
    let full = run_method_resumable(&ckpt_cfg, method).unwrap();
    assert_eq!(full.resumed_from_day, None, "{tag}: dir was not empty");
    assert_bit_identical(&reference, &full.run.result(), tag);

    let store = CheckpointStore::open(&dir, 0).unwrap();
    let snaps = store.list().unwrap();
    assert_eq!(
        snaps.len(),
        cfg.eval_days as usize,
        "{tag}: expected one snapshot per eval day"
    );

    // Resume from every snapshot — intermediate and final alike — into a
    // config with checkpointing disabled (the run fingerprint ignores
    // checkpoint knobs, so the snapshot still matches).
    for snap in &snaps {
        let resumed = run_method_resume_from(cfg, method, snap).unwrap();
        assert!(resumed.resumed_from_day.is_some());
        assert_bit_identical(
            &reference,
            &resumed.run.result(),
            &format!("{tag}: resume from {}", snap.display()),
        );
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resume_from_every_snapshot_is_bit_identical() {
    let mut cfg = SimConfig::tiny(11);
    cfg.eval_days = 3; // three snapshots: two mid-run, one final
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "pfdrl");
}

#[test]
fn resume_is_bit_identical_under_active_fault_plan() {
    let mut cfg = SimConfig::tiny(13);
    cfg.eval_days = 3;
    // Aggressive chaos with a high straggler rate so parked delivery
    // queues are in flight when the snapshot is taken.
    cfg.fault = FaultConfig::chaos(13, 0.5);
    cfg.fault.straggler_rate = 0.8;
    assert!(cfg.fault.is_active());
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "chaos");
}

#[test]
fn resume_is_bit_identical_under_shared_sum_fast_path() {
    // The O(N) shared-reduction aggregation must be just as
    // snapshot-stable as the per-home default: its tree reduction is
    // deterministic in topology (never thread-count-derived), so a
    // resumed run replays the exact same float summation order.
    let mut cfg = SimConfig::tiny(31);
    cfg.eval_days = 3;
    cfg.aggregation = pfdrl_fl::AggregationMode::SharedSum;
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "shared-sum");
}

#[test]
fn resume_is_bit_identical_under_hierarchical_sharding() {
    // The two-level sharded federation must be just as snapshot-stable
    // as the flat modes: the snapshot's optional shard section restores
    // every per-shard engine byte-exactly — round/fast-path/fallback
    // counters, bus statistics, and the parked straggler queues still
    // in flight at the checkpoint boundary — so a resumed run replays
    // the same per-shard reductions and the same fixed-shape
    // aggregate-of-aggregates merge. Chaos + a high straggler rate make
    // sure those queues are non-empty when the snapshot is cut.
    let mut cfg = SimConfig::tiny(41);
    cfg.n_residences = 7; // uneven split across 3 shards
    cfg.eval_days = 3;
    cfg.aggregation = pfdrl_fl::AggregationMode::Hierarchical {
        shards: 3,
        assignment: pfdrl_fl::ShardAssignment::RoundRobin,
    };
    cfg.fault = FaultConfig::chaos(41, 0.5);
    cfg.fault.straggler_rate = 0.8;
    assert!(cfg.fault.is_active());
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "hierarchical");

    // The archetype-keyed assignment is part of the run identity too.
    let mut cfg = SimConfig::tiny(43);
    cfg.n_residences = 6;
    cfg.eval_days = 3;
    cfg.aggregation = pfdrl_fl::AggregationMode::Hierarchical {
        shards: 2,
        assignment: pfdrl_fl::ShardAssignment::ArchetypeMix,
    };
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "hierarchical-archetype");
}

#[test]
fn resume_is_bit_identical_under_q8_compression() {
    // Quantized uplinks must be just as snapshot-stable as raw ones:
    // the codec is applied deterministically at export, the merged
    // (dequantized) values are plain f64s in the agent states, and the
    // snapshot carries both the wire and logical byte counters.
    let mut cfg = SimConfig::tiny(47);
    cfg.eval_days = 3;
    cfg.aggregation = pfdrl_fl::AggregationMode::SharedSum;
    cfg.compression = pfdrl_fl::PayloadCodec::QuantizedI8 {
        per_layer_scale: true,
    };
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "q8");
}

#[test]
fn resume_is_bit_identical_under_topk_compression_with_chaos_and_shards() {
    // The hardest combination: sparse top-k payloads, hierarchical
    // sharding, and a chaos plan with stragglers parked mid-snapshot.
    // Corrupted compressed payloads must demote and replay exactly as
    // raw ones across the resume boundary.
    let mut cfg = SimConfig::tiny(53);
    cfg.n_residences = 7;
    cfg.eval_days = 3;
    cfg.aggregation = pfdrl_fl::AggregationMode::Hierarchical {
        shards: 3,
        assignment: pfdrl_fl::ShardAssignment::RoundRobin,
    };
    cfg.compression = pfdrl_fl::PayloadCodec::TopK { fraction: 0.25 };
    cfg.fault = FaultConfig::chaos(53, 0.5);
    cfg.fault.straggler_rate = 0.8;
    assert!(cfg.fault.is_active());
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "topk-chaos-hier");
}

#[test]
fn fl_method_resumes_bit_identically_under_q8_compression() {
    // The centralized FedAvg path compresses uploads inside the cloud
    // aggregator; its pending queues and stats must survive a resume.
    let mut cfg = SimConfig::tiny(59);
    cfg.eval_days = 3;
    cfg.compression = pfdrl_fl::PayloadCodec::QuantizedI8 {
        per_layer_scale: false,
    };
    exercise_resume_matrix(&cfg, EmsMethod::Fl, "fl-q8");
}

#[test]
fn resume_is_bit_identical_under_f32fast_lstm_inference() {
    // Reduced-precision inference must be just as snapshot-stable as the
    // f64 default: snapshots hold only the f64 master weights, and the
    // f32 mirror is re-quantized deterministically from those bits on
    // restore, so a resumed F32Fast run replays the exact same f32
    // arithmetic. `tiny` uses the LR forecaster, so switch to LSTM —
    // the one backend with a reduced-precision path.
    let mut cfg = SimConfig::tiny(37);
    cfg.eval_days = 3;
    cfg.forecast_method = pfdrl_forecast::ForecastMethod::Lstm;
    cfg.precision = pfdrl_core::Precision::F32Fast;
    exercise_resume_matrix(&cfg, EmsMethod::Pfdrl, "f32fast");
}

#[test]
fn cloud_method_resumes_bit_identically() {
    let cfg = SimConfig::tiny(17);
    exercise_resume_matrix(&cfg, EmsMethod::Cloud, "cloud");
}

#[test]
fn snapshot_from_different_config_is_rejected() {
    let dir = tmp_dir("config-mismatch");
    let cfg_a = checkpointed(&SimConfig::tiny(19), &dir);
    run_method_resumable(&cfg_a, EmsMethod::Local).unwrap();

    let cfg_b = checkpointed(&SimConfig::tiny(20), &dir);
    let err = run_method_resumable(&cfg_b, EmsMethod::Local).unwrap_err();
    assert!(
        matches!(err, StoreError::ConfigMismatch { .. }),
        "got {err:?}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_from_different_method_is_rejected() {
    let dir = tmp_dir("method-mismatch");
    let cfg = checkpointed(&SimConfig::tiny(21), &dir);
    run_method_resumable(&cfg, EmsMethod::Pfdrl).unwrap();

    let err = run_method_resumable(&cfg, EmsMethod::Frl).unwrap_err();
    match err {
        StoreError::MethodMismatch { expected, found } => {
            assert_eq!(expected, "FRL");
            assert_eq!(found, "PFDRL");
        }
        other => panic!("got {other:?}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_snapshot_is_a_typed_error_not_a_panic() {
    let dir = tmp_dir("corrupt");
    let cfg = checkpointed(&SimConfig::tiny(23), &dir);
    run_method_resumable(&cfg, EmsMethod::Local).unwrap();

    let store = CheckpointStore::open(&dir, 0).unwrap();
    let path = store.latest().unwrap().unwrap();
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&path, &bytes).unwrap();

    let err = run_method_resume_from(&cfg, EmsMethod::Local, &path).unwrap_err();
    assert!(
        matches!(
            err,
            StoreError::SectionCrc { .. } | StoreError::Malformed { .. }
        ),
        "got {err:?}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpointing_disabled_still_runs_to_completion() {
    let cfg = SimConfig::tiny(29);
    let plain = run_method(&cfg, EmsMethod::Local).result();
    let resumable = run_method_resumable(&cfg, EmsMethod::Local).unwrap();
    assert_eq!(resumable.resumed_from_day, None);
    assert_bit_identical(&plain, &resumable.run.result(), "disabled");
}
