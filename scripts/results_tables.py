#!/usr/bin/env python3
"""Renders repro_results/*.json into the markdown tables appended to
EXPERIMENTS.md. Pure stdlib; run after `repro all`."""

import json
import os
import sys

RESULTS = os.path.join(os.path.dirname(__file__), "..", "repro_results")


def load(name):
    path = os.path.join(RESULTS, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def series_table(series_list, xlabel):
    cols = [s["label"] for s in series_list]
    lines = ["| " + xlabel + " | " + " | ".join(cols) + " |",
             "|" + "---|" * (len(cols) + 1)]
    xs = [p[0] for p in series_list[0]["points"]]
    for i, x in enumerate(xs):
        row = [f"{x:g}"]
        for s in series_list:
            row.append(f"{s['points'][i][1]:.3f}" if i < len(s["points"]) else "-")
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def single_series(s, xlabel, ylabel):
    lines = [f"| {xlabel} | {ylabel} |", "|---|---|"]
    for x, y in s["points"]:
        lines.append(f"| {x:g} | {y:.3f} |")
    return "\n".join(lines)


def main():
    out = []

    if (s := load("fig2")) is not None:
        out.append("### Figure 2 — saved standby energy vs shared layers α\n")
        out.append(single_series(s, "α", "saved fraction"))
    if (s := load("fig3")) is not None:
        out.append("\n### Figure 3 — DFL accuracy vs broadcast frequency β (hours)\n")
        out.append(single_series(s, "β (h)", "accuracy"))
    if (s := load("fig4")) is not None:
        out.append("\n### Figure 4 — saved standby energy vs γ (hours)\n")
        out.append(single_series(s, "γ (h)", "saved fraction"))
    if (s := load("fig5")) is not None:
        out.append("\n### Figure 5 — CDF of forecast accuracy\n")
        out.append(series_table(s, "accuracy %"))
    if (s := load("fig6")) is not None:
        out.append("\n### Figure 6 — accuracy by hour of day\n")
        out.append(series_table(s, "hour"))
    if (s := load("fig7")) is not None:
        out.append("\n### Figure 7 — accuracy vs training days\n")
        out.append(series_table(s, "days"))
    if (s := load("fig8")) is not None:
        out.append("\n### Figure 8 — accuracy vs number of residences\n")
        out.append(series_table(s, "clients"))

    if (cmp := load("fig9_11_14")) is not None:
        out.append("\n### Figures 9/11/14 — five-method comparison\n")
        out.append("| method | converged saved fraction | saved kWh/client (total) | compute s | comm s | bytes |")
        out.append("|---|---|---|---|---|---|")
        for run in cmp["runs"]:
            ems = run["ems"]
            days = ems["daily_saved_fraction"]
            tail = max(1, (len(days) + 2) // 3)
            conv = sum(days[-tail:]) / tail
            saved = sum(ems["daily_saved_kwh_per_client"])
            compute = run["forecast_train_wall_s"] + ems["train_wall_s"]
            comm = run["forecast_comm_s"] + ems["comm_s"]
            bytes_ = run["forecast_bytes"] + ems["comm_bytes"]
            out.append(
                f"| {run['method']} | {conv:.3f} | {saved:.3f} | "
                f"{compute:.1f} | {comm:.2f} | {bytes_:,} |"
            )
        out.append("\nDaily saved fraction (convergence curves):\n")
        out.append("| day | " + " | ".join(r["method"] for r in cmp["runs"]) + " |")
        out.append("|---|" + "---|" * len(cmp["runs"]))
        ndays = len(cmp["runs"][0]["ems"]["daily_saved_fraction"])
        for d in range(ndays):
            row = [str(d + 1)]
            for r in cmp["runs"]:
                row.append(f"{r['ems']['daily_saved_fraction'][d]:.3f}")
            out.append("| " + " | ".join(row) + " |")
        out.append("\nSaved kWh per client by hour of day:\n")
        out.append("| hour | " + " | ".join(r["method"] for r in cmp["runs"]) + " |")
        out.append("|---|" + "---|" * len(cmp["runs"]))
        for h in range(24):
            row = [str(h)]
            for r in cmp["runs"]:
                row.append(f"{r['ems']['hourly_saved_kwh_per_client'][h]:.4f}")
            out.append("| " + " | ".join(row) + " |")

    if (r := load("fig10")) is not None:
        out.append("\n### Figure 10 — saved $ per client by month\n")
        out.append("| month | fixed rate $ | variable rate $ |")
        out.append("|---|---|---|")
        for m, (f, v) in enumerate(r["monthly_saved_usd"], 1):
            out.append(f"| {m} | {f:.3f} | {v:.3f} |")

    if (r := load("fig12")) is not None:
        out.append("\n### Figure 12 — personalization ablation (saved kWh/client)\n")
        out.append("| variant | mean | std |")
        out.append("|---|---|---|")
        out.append(f"| personalized (PFDRL) | {r['personalized_mean']:.3f} | {r['personalized_std']:.3f} |")
        out.append(f"| not personalized (FRL) | {r['not_personalized_mean']:.3f} | {r['not_personalized_std']:.3f} |")

    if (rows := load("fig13")) is not None:
        out.append("\n### Figure 13 — load-forecasting time overhead (s)\n")
        out.append("| method | train | test | comm |")
        out.append("|---|---|---|---|")
        for r in rows:
            out.append(f"| {r['label']} | {r['train_s']:.2f} | {r['test_s']:.2f} | {r['comm_s']:.2f} |")

    if (h := load("headline")) is not None:
        out.append("\n### Headline (§5)\n")
        out.append(f"- load-forecasting accuracy: **{100*h['forecast_accuracy']:.1f} %** (paper: 92 %)")
        out.append(f"- standby energy saved/day (converged): **{100*h['saved_standby_fraction']:.1f} %** (paper: 98 %)")
        out.append(
            f"- comfort violations: {h['comfort_violation_minutes']} of "
            f"{h['total_minutes']} device-minutes"
        )

    print("\n".join(out))


if __name__ == "__main__":
    sys.exit(main())
