//! Cross-crate integration tests: the full pipeline (data generation →
//! federated forecasting → DRL energy management) at test scale.

use pfdrl::core::runner::run_method;
use pfdrl::core::{evaluate_forecast, train_forecasters, EmsMethod, SimConfig};

fn tiny(seed: u64) -> SimConfig {
    SimConfig::tiny(seed)
}

#[test]
fn every_method_completes_and_respects_invariants() {
    let cfg = tiny(100);
    for method in EmsMethod::ALL {
        let run = run_method(&cfg, method);
        let acc = &run.ems.account;
        // Savings never exceed availability.
        assert!(
            acc.standby_saved_kwh <= acc.standby_total_kwh + 1e-12,
            "{method}: saved more than available"
        );
        // Every controllable device-minute was either counted or skipped
        // consistently: minutes = homes * controllable devices * days *
        // decision minutes.
        let decision_minutes = 1440 - cfg.state_window as u64;
        let expected =
            cfg.n_residences as u64 * cfg.devices.len() as u64 * cfg.eval_days * decision_minutes;
        assert_eq!(acc.minutes, expected, "{method}: wrong minute count");
        // Table 2 alignment: only cloud-involving methods move bytes
        // through the cloud, only PFDRL/Local stay in the local area.
        if method == EmsMethod::Local {
            assert_eq!(
                run.forecast_bytes + run.ems.comm_bytes,
                0,
                "Local must not communicate"
            );
        } else {
            assert!(
                run.forecast_bytes > 0,
                "{method}: collaborative method moved no forecaster bytes"
            );
        }
    }
}

#[test]
fn pfdrl_and_frl_share_ems_but_only_pfdrl_stays_local() {
    let cfg = tiny(101);
    let pfdrl = run_method(&cfg, EmsMethod::Pfdrl);
    let frl = run_method(&cfg, EmsMethod::Frl);
    // Both federate the DRL (bytes beyond the forecaster phase).
    assert!(pfdrl.ems.comm_bytes > 0, "PFDRL shares EMS plans");
    assert!(frl.ems.comm_bytes > 0, "FRL shares EMS plans");
    // PFDRL moves fewer DRL bytes (alpha subset, no cloud round trip).
    assert!(
        pfdrl.ems.comm_bytes < frl.ems.comm_bytes,
        "PFDRL {} >= FRL {}",
        pfdrl.ems.comm_bytes,
        frl.ems.comm_bytes
    );
}

#[test]
fn local_and_cloud_never_federate_the_drl() {
    let cfg = tiny(102);
    for method in [EmsMethod::Local, EmsMethod::Cloud, EmsMethod::Fl] {
        let run = run_method(&cfg, method);
        assert_eq!(run.ems.comm_bytes, 0, "{method} must not share EMS plans");
    }
}

#[test]
fn forecast_models_transfer_between_phases() {
    // The forecaster trained in phase 1 must be usable for evaluation
    // and for the EMS's per-minute predictions without retraining.
    let cfg = tiny(103);
    let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
    let eval1 = evaluate_forecast(&cfg, &forecast);
    let eval2 = evaluate_forecast(&cfg, &forecast);
    // Deterministic: same models + same generator seed = same numbers.
    assert_eq!(eval1.mean, eval2.mean);
    assert_eq!(eval1.accuracies.len(), eval2.accuracies.len());
}

#[test]
fn whole_pipeline_is_reproducible_from_the_seed() {
    let cfg = tiny(104);
    let a = run_method(&cfg, EmsMethod::Pfdrl);
    let b = run_method(&cfg, EmsMethod::Pfdrl);
    assert_eq!(
        a.ems.account.standby_saved_kwh,
        b.ems.account.standby_saved_kwh
    );
    assert_eq!(a.ems.daily_saved_fraction, b.ems.daily_saved_fraction);
    assert_eq!(a.forecast_bytes, b.forecast_bytes);
}

#[test]
fn different_seeds_change_the_world() {
    let a = run_method(&tiny(105), EmsMethod::Local);
    let b = run_method(&tiny(106), EmsMethod::Local);
    assert_ne!(
        a.ems.account.standby_total_kwh, b.ems.account.standby_total_kwh,
        "different seeds must generate different neighbourhoods"
    );
}

#[test]
fn learning_actually_happens_within_the_eval_span() {
    // The online DRL should save more standby energy on the last day
    // than on the first (the Figure 9 convergence effect), at least for
    // the sharing method at tiny scale.
    let mut cfg = tiny(107);
    cfg.eval_days = 3;
    let run = run_method(&cfg, EmsMethod::Pfdrl);
    let days = &run.ems.daily_saved_fraction;
    assert!(
        days.last().unwrap() >= days.first().unwrap(),
        "no improvement across days: {days:?}"
    );
}
