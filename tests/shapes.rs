//! Reproduction *shape* tests: the qualitative claims of the paper's
//! evaluation — who wins, in which direction, where the crossovers are.
//!
//! These run at a reduced experiment scale and take minutes in release
//! mode, so they are `#[ignore]`d by default:
//!
//! ```text
//! cargo test --release --test shapes -- --ignored --test-threads 1
//! ```

use pfdrl::core::runner::run_method;
use pfdrl::core::{evaluate_forecast, train_forecasters, EmsMethod, SimConfig};
use pfdrl::data::dataset::TargetTransform;
use pfdrl::data::DeviceType;
use pfdrl::drl::DqnConfig;
use pfdrl::forecast::{ForecastMethod, TrainConfig};

/// A scale large enough for the paper's orderings to be visible, small
/// enough for CI (matches `pfdrl_bench::repro_config`, fewer homes).
fn shape_config(seed: u64) -> SimConfig {
    let mut dqn = DqnConfig::slim(seed);
    dqn.hidden_width = 16;
    dqn.batch = 24;
    dqn.warmup = 48;
    SimConfig {
        seed,
        n_residences: 8,
        devices: vec![
            DeviceType::Tv,
            DeviceType::GameConsole,
            DeviceType::SetTopBox,
        ],
        train_days: 4,
        eval_days: 5,
        eval_start_day: 4,
        window: 16,
        horizon: 15,
        stride: 9,
        transform: TargetTransform::default(),
        forecast_method: ForecastMethod::Lstm,
        train: TrainConfig {
            lr: 0.02,
            max_epochs: 14,
            ..TrainConfig::with_seed(seed)
        },
        beta_hours: 12.0,
        gamma_hours: 12.0,
        alpha: 6,
        state_window: 4,
        dqn,
        train_every: 6,
        fault: pfdrl::fl::FaultConfig::default(),
        checkpoint: pfdrl::core::CheckpointPolicy::default(),
        aggregation: pfdrl::fl::AggregationMode::PerHome,
        max_shard_bytes: 0,
        sensor_fault: pfdrl::data::SensorFaultConfig::default(),
        health: pfdrl::core::HealthPolicy::default(),
        supervision: pfdrl::core::SupervisionPolicy::default(),
        precision: pfdrl::core::Precision::F64,
        compression: pfdrl::fl::PayloadCodec::Raw,
    }
}

fn accuracy(cfg: &SimConfig) -> f64 {
    let forecast = train_forecasters(cfg, EmsMethod::Pfdrl);
    evaluate_forecast(cfg, &forecast).mean
}

#[test]
#[ignore = "minutes-long shape test; run with --release -- --ignored"]
fn figure_5_method_ordering_holds() {
    // LR < SVM <= BP < LSTM (allowing SVM/BP to sit within noise of
    // each other, as they do in the paper's CDF too).
    let mut accs = Vec::new();
    for m in ForecastMethod::ALL {
        let mut cfg = shape_config(42);
        cfg.forecast_method = m;
        accs.push((m, accuracy(&cfg)));
    }
    let get = |m: ForecastMethod| accs.iter().find(|(x, _)| *x == m).unwrap().1;
    assert!(
        get(ForecastMethod::Lstm) > get(ForecastMethod::Lr),
        "LSTM {:.3} must beat LR {:.3}",
        get(ForecastMethod::Lstm),
        get(ForecastMethod::Lr)
    );
    assert!(
        get(ForecastMethod::Lstm) > get(ForecastMethod::Svm),
        "LSTM must beat SVM"
    );
    assert!(
        get(ForecastMethod::Lstm) > get(ForecastMethod::Bp),
        "LSTM must beat BP"
    );
    assert!(
        get(ForecastMethod::Bp) + 0.05 > get(ForecastMethod::Lr),
        "BP should not lose badly to LR"
    );
}

#[test]
#[ignore = "minutes-long shape test; run with --release -- --ignored"]
fn figure_6_overnight_hours_are_most_predictable() {
    let cfg = shape_config(43);
    let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
    let eval = evaluate_forecast(&cfg, &forecast);
    // 2-6 AM accuracy beats the 7-10 AM morning scramble on average
    // (outside the scheduled standby bumps the night is flat standby).
    let night: f64 = (2..6).map(|h| eval.hourly[h]).sum::<f64>() / 4.0;
    let morning: f64 = (7..10).map(|h| eval.hourly[h]).sum::<f64>() / 3.0;
    assert!(
        night > morning,
        "night {night:.3} should beat morning {morning:.3}: {:?}",
        eval.hourly
    );
}

#[test]
#[ignore = "minutes-long shape test; run with --release -- --ignored"]
fn figure_9_sharing_methods_converge_faster() {
    // PFDRL (EMS sharing) reaches 80% of its converged saving earlier
    // than Local (no sharing), and both end with high saved fractions.
    let cfg = shape_config(44);
    let pfdrl = run_method(&cfg, EmsMethod::Pfdrl);
    let local = run_method(&cfg, EmsMethod::Local);
    let pf_day = pfdrl.days_to_converge(0.8).expect("PFDRL converges");
    let lo_day = local.days_to_converge(0.8).expect("Local converges");
    assert!(
        pf_day <= lo_day,
        "PFDRL (day {pf_day}) should converge no later than Local (day {lo_day})"
    );
    assert!(
        pfdrl.converged_saved_fraction() > 0.7,
        "PFDRL saves most standby energy"
    );
}

#[test]
#[ignore = "minutes-long shape test; run with --release -- --ignored"]
fn figure_14_frl_is_the_communication_heavyweight() {
    let cfg = shape_config(45);
    let frl = run_method(&cfg, EmsMethod::Frl);
    let pfdrl = run_method(&cfg, EmsMethod::Pfdrl);
    let fl = run_method(&cfg, EmsMethod::Fl);
    // FRL federates forecasters AND full DRL models through the cloud.
    assert!(
        frl.ems.comm_s > pfdrl.ems.comm_s,
        "FRL EMS comm {:.2}s should exceed PFDRL {:.2}s",
        frl.ems.comm_s,
        pfdrl.ems.comm_s
    );
    assert!(fl.ems.comm_s == 0.0, "FL does not federate the DRL");
}

#[test]
#[ignore = "minutes-long shape test; run with --release -- --ignored"]
fn headline_pfdrl_saves_most_standby_energy() {
    // Paper: 98% of standby energy saved per day; we assert > 85% at
    // reduced scale, with low comfort violations.
    let cfg = shape_config(46);
    let run = run_method(&cfg, EmsMethod::Pfdrl);
    let saved = run.converged_saved_fraction();
    assert!(saved > 0.85, "converged saving {saved:.3}");
    let violation_rate =
        run.ems.account.comfort_violation_minutes as f64 / run.ems.account.minutes as f64;
    assert!(
        violation_rate < 0.15,
        "comfort violations {violation_rate:.3}"
    );
}
