//! Cross-crate federation tests: forecasters and DQN agents exchanged
//! over the bus, α-split privacy, and cloud-vs-LAN equivalence of the
//! FedAvg math.

use pfdrl::data::{build_windows, GeneratorConfig, TraceGenerator};
use pfdrl::drl::{DqnAgent, DqnConfig};
use pfdrl::fl::{aggregate, BroadcastBus, CloudAggregator, LatencyModel, LayerSplit, ModelUpdate};
use pfdrl::forecast::{ForecastMethod, Forecaster, TrainConfig};
use pfdrl::nn::Layered;

fn trained_forecasters(n: usize) -> Vec<Box<dyn Forecaster>> {
    let gen = TraceGenerator::new(GeneratorConfig::with_seed(50));
    (0..n)
        .map(|home| {
            let watts = gen.multi_day_watts(home as u64, 0, 0..2);
            let scale = gen.household(home as u64).devices[0].on_watts;
            let set = build_windows(&watts, scale, 8, 5, 0).strided(7);
            let mut m = ForecastMethod::Lr.build(
                set.feature_dim(),
                TrainConfig {
                    max_epochs: 3,
                    ..TrainConfig::with_seed(home as u64)
                },
            );
            m.fit(&set);
            m
        })
        .collect()
}

#[test]
fn lan_fedavg_equals_cloud_fedavg() {
    // The decentralized broadcast (Algorithm 1) and the centralized
    // parameter server compute the same average.
    let models = trained_forecasters(3);

    // Cloud path.
    let cloud = CloudAggregator::new(LatencyModel::cloud());
    for (i, m) in models.iter().enumerate() {
        cloud.upload(aggregate::snapshot_update(m.as_ref(), i, 0, 0));
    }
    cloud.aggregate();
    let global = cloud.download().unwrap();

    // LAN path: every home merges own + received.
    let bus = BroadcastBus::new(3, LatencyModel::lan());
    let mut lan_models = trained_forecasters(3);
    for (i, m) in lan_models.iter().enumerate() {
        bus.broadcast(aggregate::snapshot_update(m.as_ref(), i, 0, 0));
    }
    for (i, m) in lan_models.iter_mut().enumerate() {
        let updates = bus.drain(i);
        let refs: Vec<&ModelUpdate> = updates.iter().map(|u| u.as_ref()).collect();
        aggregate::merge_updates(m.as_mut(), &refs);
    }

    for (layer, g) in global.iter().enumerate() {
        for m in &lan_models {
            let l = m.export_layer(layer);
            for (a, b) in g.iter().zip(l.iter()) {
                assert!((a - b).abs() < 1e-9, "LAN and cloud FedAvg disagree");
            }
        }
    }
}

#[test]
fn alpha_split_keeps_personal_layers_distinct_across_homes() {
    let mut agents: Vec<DqnAgent> = (0..3)
        .map(|i| {
            DqnAgent::new(
                10,
                DqnConfig {
                    seed: i,
                    ..DqnConfig::slim(i)
                },
            )
        })
        .collect();
    let alpha = 4;
    let split = LayerSplit::for_model(alpha, &agents[0]);
    let bus = BroadcastBus::new(3, LatencyModel::lan());

    for (i, a) in agents.iter().enumerate() {
        bus.broadcast(split.base_update(a, i, 0, 0));
    }
    for (i, a) in agents.iter_mut().enumerate() {
        let updates = bus.drain(i);
        let refs: Vec<&ModelUpdate> = updates.iter().map(|u| u.as_ref()).collect();
        split.merge_base(a, &refs);
    }

    // Base layers identical everywhere...
    for layer in 0..alpha {
        let reference = agents[0].export_layer(layer);
        for a in &agents[1..] {
            let l = a.export_layer(layer);
            for (x, y) in reference.iter().zip(l.iter()) {
                assert!((x - y).abs() < 1e-9, "base layer {layer} diverged");
            }
        }
    }
    // ...personalization layers still distinct.
    for layer in alpha..agents[0].layer_count() {
        let reference = agents[0].export_layer(layer);
        assert_ne!(
            reference,
            agents[1].export_layer(layer),
            "personal layer {layer} was unexpectedly shared"
        );
    }
}

#[test]
fn base_updates_never_contain_personal_layers() {
    let agent = DqnAgent::new(10, DqnConfig::slim(9));
    for alpha in 1..=agent.layer_count() {
        let split = LayerSplit::for_model(alpha, &agent);
        let update = split.base_update(&agent, 0, 0, 0);
        assert_eq!(update.layers.len(), alpha);
        assert!(update.layers.iter().all(|l| l.index < alpha));
    }
}

#[test]
fn repeated_rounds_shrink_model_disagreement() {
    // FedAvg is a contraction toward consensus: inter-home parameter
    // spread decreases monotonically across synchronous rounds when no
    // local training happens between them (one round reaches consensus).
    let mut models = trained_forecasters(4);
    let spread = |models: &Vec<Box<dyn Forecaster>>| -> f64 {
        let a = models[0].export_layer(0);
        let b = models[2].export_layer(0);
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    };
    let before = spread(&models);
    assert!(before > 0.0, "independently trained models should differ");

    let bus = BroadcastBus::new(4, LatencyModel::lan());
    for (i, m) in models.iter().enumerate() {
        bus.broadcast(aggregate::snapshot_update(m.as_ref(), i, 0, 0));
    }
    for (i, m) in models.iter_mut().enumerate() {
        let updates = bus.drain(i);
        let refs: Vec<&ModelUpdate> = updates.iter().map(|u| u.as_ref()).collect();
        aggregate::merge_updates(m.as_mut(), &refs);
    }
    let after = spread(&models);
    assert!(
        after < 1e-9,
        "synchronous FedAvg round must reach consensus, spread {after}"
    );
}

#[test]
fn federated_agent_still_learns_after_import() {
    // Importing averaged parameters must not break the optimizer or the
    // target network: subsequent training still reduces TD loss.
    let mut a = DqnAgent::new(
        4,
        DqnConfig {
            warmup: 16,
            batch: 8,
            ..DqnConfig::slim(20)
        },
    );
    let b = DqnAgent::new(
        4,
        DqnConfig {
            warmup: 16,
            batch: 8,
            ..DqnConfig::slim(21)
        },
    );
    for i in 0..b.layer_count() {
        a.import_layer(i, &b.export_layer(i));
    }
    use pfdrl::drl::Transition;
    let mut losses = Vec::new();
    for k in 0..300 {
        let s = vec![(k % 2) as f64, 1.0 - (k % 2) as f64, 0.5, 0.0];
        if let Some(l) = a.observe(Transition {
            state: s,
            action: k % 3,
            reward: if k % 3 == 0 { 10.0 } else { -10.0 },
            next_state: None,
        }) {
            losses.push(l);
        }
    }
    let early: f64 = losses[..20].iter().sum::<f64>() / 20.0;
    let late: f64 = losses[losses.len() - 20..].iter().sum::<f64>() / 20.0;
    assert!(
        late < early,
        "TD loss did not decrease after import: {early} -> {late}"
    );
}
