//! Property-based tests (proptest) on cross-crate invariants.

use pfdrl::data::{build_windows, Mode};
use pfdrl::env::{classify, reward};
use pfdrl::fl::{PeriodicSchedule, Topology};
use pfdrl::nn::{average_params, loss, Matrix};
use proptest::prelude::*;

proptest! {
    /// FedAvg of identical snapshots is the identity, for any shape.
    #[test]
    fn average_of_identical_snapshots_is_identity(
        values in prop::collection::vec(-1e6f64..1e6, 1..64),
        copies in 1usize..8,
    ) {
        let snaps: Vec<Vec<f64>> = (0..copies).map(|_| values.clone()).collect();
        let avg = average_params(&snaps);
        for (a, v) in avg.iter().zip(values.iter()) {
            prop_assert!((a - v).abs() <= 1e-9 * v.abs().max(1.0));
        }
    }

    /// The average lies inside the element-wise min/max envelope.
    #[test]
    fn average_stays_in_envelope(
        snaps in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 8),
            1..6,
        ),
    ) {
        let avg = average_params(&snaps);
        for i in 0..8 {
            let lo = snaps.iter().map(|s| s[i]).fold(f64::MAX, f64::min);
            let hi = snaps.iter().map(|s| s[i]).fold(f64::MIN, f64::max);
            prop_assert!(avg[i] >= lo - 1e-9 && avg[i] <= hi + 1e-9);
        }
    }

    /// Table 1 structure: matching the truth is always at least as good
    /// as any mis-match except the standby->off bonus.
    #[test]
    fn reward_prefers_truth_except_standby_off(gt_idx in 0usize..3, a_idx in 0usize..3) {
        let gt = Mode::from_index(gt_idx);
        let a = Mode::from_index(a_idx);
        let r = reward(gt, a);
        prop_assert!((-30.0..=30.0).contains(&r));
        if gt == a {
            prop_assert_eq!(r, 10.0);
        } else if !(gt == Mode::Standby && a == Mode::Off) {
            prop_assert!(r < 0.0);
        }
    }

    /// Classification is scale-consistent: readings within ±9% of a
    /// device's nominal level classify to that level's mode.
    #[test]
    fn classification_tolerates_band_noise(noise in -0.09f64..0.09) {
        let spec = pfdrl::data::DeviceType::GameConsole.nominal_spec();
        prop_assert_eq!(classify(&spec, spec.on_watts * (1.0 + noise)), Mode::On);
        prop_assert_eq!(classify(&spec, spec.standby_watts * (1.0 + noise)), Mode::Standby);
        prop_assert_eq!(classify(&spec, 0.0), Mode::Off);
    }

    /// Windowing: every sample's target equals the trace value at the
    /// position implied by (window, horizon), for arbitrary traces.
    #[test]
    fn window_targets_align_with_trace(
        trace in prop::collection::vec(0.0f64..500.0, 40..200),
        window in 2usize..10,
        horizon in 1usize..10,
    ) {
        prop_assume!(trace.len() > window + horizon);
        let set = build_windows(&trace, 100.0, window, horizon, 0);
        for (i, t) in set.targets.iter().enumerate() {
            let expected = trace[i + window + horizon - 1] / 100.0;
            prop_assert!((t - expected).abs() < 1e-12);
        }
        // And inputs are contiguous slices of the trace.
        for (i, f) in set.inputs.iter().enumerate() {
            for (j, v) in f[..window].iter().enumerate() {
                prop_assert!((v - trace[i + j] / 100.0).abs() < 1e-12);
            }
        }
    }

    /// Huber loss is bounded above by MSE/2 elementwise-summed (it is the
    /// robustified version) and is always non-negative.
    #[test]
    fn huber_below_half_mse(
        pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..32),
    ) {
        let (pred, target): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let p = Matrix::row_vector(pred);
        let t = Matrix::row_vector(target);
        let (h, _) = loss::huber(&p, &t, 1.0);
        let (m, _) = loss::mse(&p, &t);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= 0.5 * m + 1e-9);
    }

    /// The broadcast scheduler fires exactly floor(horizon/period) times
    /// when polled densely from 0 to horizon.
    #[test]
    fn scheduler_fires_expected_count(period in 0.5f64..24.0, horizon in 24.0f64..96.0) {
        let mut s = PeriodicSchedule::new(period);
        let mut fired = 0u64;
        let mut t = 0.0;
        while t <= horizon {
            if s.due(t) {
                fired += 1;
            }
            t += 0.05;
        }
        let expected = (horizon / period).floor() as u64;
        // Dense polling may miss the final boundary by float step; allow 1.
        prop_assert!(
            fired == expected || fired == expected + 1 || fired + 1 == expected,
            "period {period}, horizon {horizon}: fired {fired}, expected {expected}"
        );
    }

    /// Every topology yields peer lists with no self-loops and no
    /// duplicates, for every node — including RandomK, whose rejection
    /// sampling must terminate for any k up to n-1.
    #[test]
    fn topology_peers_are_self_free_and_unique(
        n in 2usize..24,
        k_frac in 0.0f64..1.0,
        round_salt in 0u64..1000,
    ) {
        let k = 1 + (k_frac * (n - 2) as f64) as usize; // 1..=n-1
        prop_assume!(k < n);
        let topologies = [
            Topology::FullBroadcast,
            Topology::Ring,
            Topology::RandomK { k, round_salt },
        ];
        for t in topologies {
            for node in 0..n {
                let peers = t.peers(node, n);
                prop_assert!(!peers.contains(&node), "{t:?}: node {node} is its own peer");
                let mut sorted = peers.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert!(
                    sorted.len() == peers.len(),
                    "{t:?}: duplicate peers for node {node}"
                );
                for &p in &peers {
                    prop_assert!(p < n);
                }
                if let Topology::RandomK { k, .. } = t {
                    prop_assert_eq!(peers.len(), k);
                }
            }
        }
    }

    /// Catch-up semantics across float-accumulated horizons: no matter
    /// how irregular the polling instants, the scheduler fires at most
    /// once per missed span (no bursts) and never falls permanently
    /// behind — after a fire, the next due time is strictly in the
    /// future.
    #[test]
    fn scheduler_catchup_never_bursts(
        period in 0.05f64..24.0,
        steps in prop::collection::vec(0.001f64..10.0, 1..60),
    ) {
        let mut s = PeriodicSchedule::new(period);
        let mut now = 0.0f64;
        let mut fires = 0u64;
        for dt in steps {
            now += dt; // accumulated float time, like the EMS minute loop
            if s.due(now) {
                fires += 1;
                // Immediately polling again at the same instant must not
                // fire a second time: catch-up is one broadcast, not a
                // burst per missed period.
                prop_assert!(!s.due(now), "burst at t={now}, period {period}");
            }
        }
        // Firing count is bounded by the elapsed periods (catch-up
        // collapses missed periods into single fires).
        let max_fires = (now / period).floor() as u64 + 1;
        prop_assert!(fires <= max_fires, "{fires} fires > {max_fires} possible periods");
    }

    /// Matrix multiplication distributes over addition:
    /// (A + B) C = AC + BC, within float tolerance.
    #[test]
    fn matmul_distributes(
        a in prop::collection::vec(-10.0f64..10.0, 12),
        b in prop::collection::vec(-10.0f64..10.0, 12),
        c in prop::collection::vec(-10.0f64..10.0, 20),
    ) {
        let ma = Matrix::from_vec(3, 4, a);
        let mb = Matrix::from_vec(3, 4, b);
        let mc = Matrix::from_vec(4, 5, c);
        let mut sum = ma.clone();
        sum.add_assign(&mb);
        let left = sum.matmul(&mc);
        let mut right = ma.matmul(&mc);
        right.add_assign(&mb.matmul(&mc));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }
}
