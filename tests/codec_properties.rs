//! Property-based tests on the federation payload codecs: round-trip
//! determinism for every codec, quantization error bounds, sparse
//! index-set exactness, and hostile-bytes fuzzing (truncation and
//! single-bit flips must produce typed errors, never panics).

use pfdrl::fl::{LayerUpdate, ModelUpdate, PayloadCodec};
use proptest::prelude::*;

/// Arbitrary f64s *by bit pattern* — covers NaN payloads, ±0.0,
/// infinities, and denormals, not just the values proptest's float
/// strategies reach.
fn any_bits_layers() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..=u64::MAX, 0..24), 1..4)
}

/// Finite, well-scaled parameters (the realistic model-weight case).
fn finite_layers() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1e3f64..1e3, 1..24), 1..4)
}

fn update_from_bits(layers: &[Vec<u64>]) -> ModelUpdate {
    ModelUpdate {
        sender: 3,
        round: 7,
        model_id: 1,
        layers: layers
            .iter()
            .enumerate()
            .map(|(i, l)| LayerUpdate {
                index: i,
                params: l.iter().map(|&b| f64::from_bits(b)).collect(),
            })
            .collect(),
    }
}

fn update_from_values(layers: &[Vec<f64>]) -> ModelUpdate {
    ModelUpdate {
        sender: 3,
        round: 7,
        model_id: 1,
        layers: layers
            .iter()
            .enumerate()
            .map(|(i, l)| LayerUpdate {
                index: i,
                params: l.clone(),
            })
            .collect(),
    }
}

fn bits_of(u: &ModelUpdate) -> Vec<(usize, Vec<u64>)> {
    u.layers
        .iter()
        .map(|l| (l.index, l.params.iter().map(|p| p.to_bits()).collect()))
        .collect()
}

const ALL_CODECS: [PayloadCodec; 4] = [
    PayloadCodec::Raw,
    PayloadCodec::QuantizedI8 {
        per_layer_scale: true,
    },
    PayloadCodec::QuantizedI8 {
        per_layer_scale: false,
    },
    PayloadCodec::TopK { fraction: 0.25 },
];

proptest! {
    /// Raw encode→decode is bit-exact for *any* f64 bit pattern:
    /// NaN payloads, -0.0, infinities and denormals all survive.
    #[test]
    fn raw_roundtrip_preserves_every_bit_pattern(layers in any_bits_layers()) {
        let u = update_from_bits(&layers);
        let decoded = ModelUpdate::decode(&u.encode()).expect("raw decode");
        prop_assert_eq!(bits_of(&decoded), bits_of(&u));
        prop_assert_eq!(
            (decoded.sender, decoded.round, decoded.model_id),
            (u.sender, u.round, u.model_id)
        );
    }

    /// The codec invariant: decoding a compressed encoding yields
    /// exactly `transform` of the original, bit for bit — and both
    /// sides are deterministic (same input, same bytes, same bits).
    #[test]
    fn decode_of_encode_matches_transform_bitwise_for_every_codec(
        layers in any_bits_layers(),
    ) {
        for codec in ALL_CODECS {
            let u = update_from_bits(&layers);
            let bytes = u.encode_with(codec);
            prop_assert!(bytes == u.encode_with(codec), "encode must be deterministic");
            let decoded = ModelUpdate::decode(&bytes)
                .unwrap_or_else(|e| panic!("{} decode: {e}", codec.label()));
            let mut expected = u.clone();
            codec.transform(&mut expected);
            prop_assert!(
                bits_of(&decoded) == bits_of(&expected),
                "codec {} decode != transform",
                codec.label()
            );
        }
    }

    /// Symmetric int8 quantization error is bounded by scale/2 on
    /// finite inputs (scale = max|x| / 127 per layer), and the
    /// dequantized values are always finite.
    #[test]
    fn q8_error_is_bounded_by_half_scale(layers in finite_layers()) {
        let codec = PayloadCodec::QuantizedI8 { per_layer_scale: true };
        let u = update_from_values(&layers);
        let decoded = ModelUpdate::decode(&u.encode_with(codec)).expect("q8 decode");
        for (orig, got) in u.layers.iter().zip(decoded.layers.iter()) {
            let scale = orig.params.iter().fold(0.0f64, |m, x| m.max(x.abs())) / 127.0;
            for (&x, &y) in orig.params.iter().zip(got.params.iter()) {
                prop_assert!(y.is_finite());
                prop_assert!(
                    (x - y).abs() <= scale / 2.0 + 1e-15,
                    "x={x} y={y} scale={scale}"
                );
            }
        }
    }

    /// TopK keeps exactly the k largest-|x - fill| coordinates bit-
    /// exactly and maps every other coordinate to the layer's fill
    /// value — the decoded layer never has more than k non-fill
    /// entries.
    #[test]
    fn topk_keeps_at_most_k_non_fill_values(
        layers in finite_layers(),
        fraction in 0.05f64..1.0,
    ) {
        let codec = PayloadCodec::TopK { fraction };
        let u = update_from_values(&layers);
        let decoded = ModelUpdate::decode(&u.encode_with(codec)).expect("topk decode");
        for (orig, got) in u.layers.iter().zip(decoded.layers.iter()) {
            let len = orig.params.len();
            let k = ((fraction * len as f64).ceil() as usize).clamp(1, len.max(1));
            // Kept survivors travel bit-exactly.
            let kept: Vec<usize> = (0..len)
                .filter(|&i| got.params[i].to_bits() == orig.params[i].to_bits())
                .collect();
            prop_assert!(kept.len() >= k.min(len), "fewer than k bit-exact survivors");
            // Everything else is the fill value (a single shared f64).
            let non_kept: Vec<f64> = (0..len)
                .filter(|i| !kept.contains(i))
                .map(|i| got.params[i])
                .collect();
            prop_assert!(non_kept.len() <= len - k);
            if let Some(&first) = non_kept.first() {
                prop_assert!(non_kept.iter().all(|v| v.to_bits() == first.to_bits()));
            }
        }
    }

    /// Truncating a valid encoding anywhere yields a typed error —
    /// never a panic, never a silently short decode.
    #[test]
    fn truncation_is_rejected_for_every_codec(
        layers in finite_layers(),
        cut_frac in 0.0f64..1.0,
    ) {
        for codec in ALL_CODECS {
            let u = update_from_values(&layers);
            let bytes = u.encode_with(codec);
            let cut = (cut_frac * bytes.len() as f64) as usize;
            prop_assume!(cut < bytes.len());
            prop_assert!(
                ModelUpdate::decode(&bytes[..cut]).is_err(),
                "codec {} accepted a {}-byte prefix of {} bytes",
                codec.label(),
                cut,
                bytes.len()
            );
        }
    }

    /// Flipping any single bit of a valid encoding either still decodes
    /// (the flip hit a value payload) or fails with a typed error — the
    /// decoder has no reachable panic.
    #[test]
    fn single_bit_flips_never_panic(
        layers in finite_layers(),
        byte_frac in 0.0f64..1.0,
        bit in 0usize..8,
    ) {
        for codec in ALL_CODECS {
            let u = update_from_values(&layers);
            let mut bytes = u.encode_with(codec);
            let pos = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
            bytes[pos] ^= 1 << bit;
            // Must return, Ok or Err — the property is "no panic, no UB".
            let _ = ModelUpdate::decode(&bytes);
        }
    }
}
