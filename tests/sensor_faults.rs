//! Hostile-telemetry acceptance tests: seeded sensor-fault storms must
//! replay bit-identically (including across a kill-and-resume boundary
//! mid-quarantine), the divergence supervisor's rollbacks must be part
//! of that determinism, and the imputation path must never panic on
//! arbitrary garbage streams.

use pfdrl::core::{
    run_method_resumable, run_method_resume_from, CheckpointPolicy, EmsMethod, EmsPhase,
    HealthPolicy, SimConfig, SupervisionPolicy,
};
use pfdrl::data::{impute_forward_fill, SensorFaultConfig, MINUTES_PER_DAY, WATT_CEILING};
use pfdrl::store::CheckpointStore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfdrl-sensor-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A tiny neighbourhood under a severe sensor-fault storm, with health
/// thresholds tightened so quarantine engages within the short run.
fn stormy_config(world_seed: u64, fault_seed: u64) -> SimConfig {
    let mut cfg = SimConfig::tiny(world_seed);
    cfg.sensor_fault = SensorFaultConfig::storm(fault_seed, 0.8);
    cfg.health = HealthPolicy {
        dirty_minutes: 1,
        quarantine_after_days: 1,
        readmit_after_days: 1,
    };
    cfg
}

/// Wall-clock is the only nondeterministic output; mask it so the
/// comparison covers every simulated quantity, health counters included.
fn canonical(ems: &EmsPhase) -> String {
    let mut ems = ems.clone();
    ems.train_wall_s = 0.0;
    serde_json::to_string(&ems).expect("serializable phase")
}

#[test]
fn seeded_sensor_storm_replays_bit_identically() {
    let cfg = stormy_config(17, 0xBADCAB);
    let run_once = || {
        let run = run_method_resumable(&cfg, EmsMethod::Pfdrl).unwrap().run;
        assert!(run.ems.imputed_minutes > 0, "storm imputed nothing");
        canonical(&run.ems)
    };
    assert_eq!(
        run_once(),
        run_once(),
        "same sensor-fault seed must replay bit-identically"
    );
}

#[test]
fn sensor_outcome_depends_on_fault_seed() {
    let phase = |fault_seed: u64| {
        let cfg = stormy_config(17, fault_seed);
        canonical(
            &run_method_resumable(&cfg, EmsMethod::Pfdrl)
                .unwrap()
                .run
                .ems,
        )
    };
    // Not guaranteed for every pair of seeds in principle, but an 80%
    // storm corrupts most device-days, so the plans diverge immediately.
    assert_ne!(phase(1), phase(2), "fault seed is not wired through");
}

/// Runs `cfg` uninterrupted (checkpointing disabled), then checkpointed
/// at day cadence, then resumes from every snapshot — every outcome,
/// including the health counters, must be bit-identical.
fn exercise_resume_matrix(cfg: &SimConfig, tag: &str) -> EmsPhase {
    let reference = run_method_resumable(cfg, EmsMethod::Pfdrl).unwrap().run.ems;

    let dir = tmp_dir(tag);
    let mut ckpt_cfg = cfg.clone();
    ckpt_cfg.checkpoint = CheckpointPolicy {
        dir: Some(dir.to_string_lossy().into_owned()),
        every_days: 1,
        keep_last: 0, // keep every snapshot so we can resume from each
        abort_after_days: None,
    };
    let full = run_method_resumable(&ckpt_cfg, EmsMethod::Pfdrl).unwrap();
    assert_eq!(full.resumed_from_day, None, "{tag}: dir was not empty");
    assert_eq!(canonical(&reference), canonical(&full.run.ems), "{tag}");

    let store = CheckpointStore::open(&dir, 0).unwrap();
    for snap in &store.list().unwrap() {
        let resumed = run_method_resume_from(cfg, EmsMethod::Pfdrl, snap).unwrap();
        assert!(resumed.resumed_from_day.is_some());
        let ems = resumed.run.ems;
        assert_eq!(
            canonical(&reference),
            canonical(&ems),
            "{tag}: resume from {}",
            snap.display()
        );
        assert_eq!(ems.imputed_minutes, reference.imputed_minutes, "{tag}");
        assert_eq!(
            ems.health_transitions, reference.health_transitions,
            "{tag}"
        );
        assert_eq!(
            ems.quarantined_home_days, reference.quarantined_home_days,
            "{tag}"
        );
        assert_eq!(ems.rollbacks, reference.rollbacks, "{tag}");
        assert_eq!(ems.daily_mean_loss, reference.daily_mean_loss, "{tag}");
    }
    fs::remove_dir_all(&dir).unwrap();
    reference
}

#[test]
fn kill_and_resume_mid_quarantine_is_bit_identical() {
    let mut cfg = stormy_config(11, 0xBADCAB);
    cfg.eval_days = 4; // snapshots land both inside and after quarantine
    let reference = exercise_resume_matrix(&cfg, "quarantine");
    assert!(
        reference.quarantined_home_days > 0,
        "the storm never drove a home into quarantine — the scenario \
         does not cover the mid-quarantine resume path"
    );
    assert!(reference.health_transitions > 0);
}

#[test]
fn supervision_rollbacks_replay_across_resume() {
    // A microscopic explode factor makes any day with positive loss
    // "diverged" relative to the window, so rollbacks fire on a plain
    // clean run — deterministically, because the frozen re-run posts a
    // zero-loss day that the next baseline window then excludes.
    let mut cfg = SimConfig::tiny(13);
    cfg.eval_days = 4;
    cfg.supervision = SupervisionPolicy {
        explode_factor: 1e-12,
        window_days: 1,
    };
    let reference = exercise_resume_matrix(&cfg, "rollback");
    assert!(
        reference.rollbacks > 0,
        "supervisor never rolled back — the scenario does not cover recovery"
    );
}

#[test]
fn hostile_streams_never_panic_and_impute_to_physical_watts() {
    let cfg = SensorFaultConfig::storm(0xFEED, 1.0);
    let plan = cfg.plan();
    let mut rng = StdRng::seed_from_u64(5);
    for case in 0..200u64 {
        // Arbitrary garbage telemetry: NaNs, infinities, negatives,
        // physically impossible magnitudes.
        let mut watts: Vec<f64> = (0..MINUTES_PER_DAY)
            .map(|_| match rng.gen_range(0..8u32) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -rng.gen_range(0.0..1e6),
                4 => rng.gen_range(WATT_CEILING..1e12),
                _ => rng.gen_range(0.0..500.0),
            })
            .collect();
        // Corrupting an already-hostile stream must not panic either.
        plan.corrupt_day(case, case % 3, case % 7, &mut watts);
        impute_forward_fill(&mut watts, WATT_CEILING, 0.0);
        for (i, &w) in watts.iter().enumerate() {
            assert!(
                w.is_finite() && (0.0..=WATT_CEILING).contains(&w),
                "case {case} minute {i}: imputation let {w} through"
            );
        }
    }
}

#[test]
fn corruption_is_order_free_and_idempotent_per_day() {
    // The plan is a pure function of (seed, home, device, day): applying
    // it to the same clean stream twice, in any order relative to other
    // days, yields bit-identical corruption.
    let plan = SensorFaultConfig::storm(42, 0.7).plan();
    let clean: Vec<f64> = (0..MINUTES_PER_DAY).map(|m| (m % 97) as f64).collect();
    let corrupt = |home: u64, device: u64, day: u64| {
        let mut w = clean.clone();
        plan.corrupt_day(home, device, day, &mut w);
        w.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
    };
    let forward: Vec<_> = (0..5).map(|day| corrupt(1, 2, day)).collect();
    let mut backward: Vec<_> = (0..5).rev().map(|day| corrupt(1, 2, day)).collect();
    backward.reverse();
    assert_eq!(forward, backward, "corruption depends on call order");
}
