//! Robustness integration tests: deterministic chaos runs and
//! fuzz-style no-panic guarantees for the federation substrate under
//! malformed traffic.

use pfdrl::core::{runner::run_method, EmsMethod, SimConfig};
use pfdrl::fl::{
    aggregate, BroadcastBus, CloudAggregator, FaultConfig, LatencyModel, LayerSplit, LayerUpdate,
    MergePolicy, ModelUpdate,
};
use pfdrl::nn::Layered;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The acceptance scenario: 30% message loss, enough dropout that some
/// residences sit out whole windows. Two runs from the same fault seed
/// must be bit-identical.
#[test]
fn chaos_runs_are_bit_identical_per_seed() {
    let mut cfg = SimConfig::tiny(17);
    cfg.fault = FaultConfig {
        seed: 0xC0FFEE,
        loss_rate: 0.3,
        dropout_rate: 0.4,
        offline_rounds: 2,
        straggler_rate: 0.1,
        corrupt_rate: 0.1,
        ..FaultConfig::default()
    };
    let run_once = || {
        let run = run_method(&cfg, EmsMethod::Pfdrl);
        // Wall-clock fields are the only nondeterministic outputs; mask
        // them so the comparison covers every simulated quantity.
        let mut ems = run.ems.clone();
        ems.train_wall_s = 0.0;
        serde_json::to_string(&ems).expect("serializable phase")
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second, "same fault seed must replay bit-identically");
}

/// A different fault seed must actually change the outcome (otherwise
/// the chaos plan is not wired through).
#[test]
fn chaos_outcome_depends_on_fault_seed() {
    let base = SimConfig::tiny(17);
    let savings = |fault_seed: u64| {
        let mut cfg = base.clone();
        cfg.fault = FaultConfig {
            seed: fault_seed,
            loss_rate: 0.5,
            dropout_rate: 0.5,
            ..FaultConfig::default()
        };
        let run = run_method(&cfg, EmsMethod::Pfdrl);
        serde_json::to_string(&run.ems.daily_saved_fraction).unwrap()
    };
    // Not guaranteed for every pair of seeds in principle, but with 50%
    // loss and churn the delivery patterns diverge immediately.
    assert_ne!(savings(1), savings(2));
}

/// A tiny Layered model for direct merge fuzzing.
#[derive(Clone)]
struct Toy {
    layers: Vec<Vec<f64>>,
}

impl Toy {
    fn new() -> Self {
        Toy {
            layers: vec![vec![0.5; 6], vec![0.5; 4], vec![0.5; 2]],
        }
    }
}

impl Layered for Toy {
    fn layer_count(&self) -> usize {
        self.layers.len()
    }
    fn layer_param_count(&self, i: usize) -> usize {
        self.layers[i].len()
    }
    fn export_layer(&self, i: usize) -> Vec<f64> {
        self.layers[i].clone()
    }
    fn import_layer(&mut self, i: usize, data: &[f64]) {
        self.layers[i] = data.to_vec();
    }
}

/// Generates an adversarial update: random layer indices (possibly out
/// of range), random sizes (possibly wrong), NaN/infinity injection.
fn hostile_update(rng: &mut StdRng, n_senders: usize) -> ModelUpdate {
    let n_layers = rng.gen_range(0..5usize);
    let layers = (0..n_layers)
        .map(|_| {
            let index = rng.gen_range(0..20usize);
            let len = rng.gen_range(0..10usize);
            let params = (0..len)
                .map(|_| match rng.gen_range(0..10u32) {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    _ => rng.gen_range(-10.0..10.0),
                })
                .collect();
            LayerUpdate { index, params }
        })
        .collect();
    ModelUpdate {
        sender: rng.gen_range(0..n_senders),
        round: rng.gen_range(0..100u64),
        model_id: rng.gen_range(0..4u64),
        layers,
    }
}

/// No panic is reachable from the merge path on corrupted, truncated or
/// mis-sized updates: every malformed layer surfaces as a typed
/// rejection and the local model stays finite.
#[test]
fn merges_never_panic_on_hostile_updates() {
    let mut rng = StdRng::seed_from_u64(99);
    let policy = MergePolicy {
        min_quorum: 2,
        staleness_decay: 0.5,
        max_staleness: 10,
    };
    for _ in 0..500 {
        let updates: Vec<ModelUpdate> = (0..rng.gen_range(0..6usize))
            .map(|_| hostile_update(&mut rng, 4))
            .collect();
        let refs: Vec<&ModelUpdate> = updates.iter().collect();

        let mut model = Toy::new();
        let report = aggregate::merge_updates(&mut model, &refs);
        assert!(report.accepted_updates <= refs.len());
        let mut model2 = Toy::new();
        let _ = aggregate::merge_updates_with(&mut model2, &refs, 50, &policy);
        for m in [&model, &model2] {
            for layer in &m.layers {
                assert!(
                    layer.iter().all(|p| p.is_finite()),
                    "merge let non-finite params in"
                );
            }
        }

        let mut split_model = Toy::new();
        let split = LayerSplit::for_model(2, &split_model);
        let _ = split.merge_base(&mut split_model, &refs);
        for (i, layer) in split_model.layers.iter().enumerate() {
            assert!(layer.iter().all(|p| p.is_finite()));
            if i >= 2 {
                assert_eq!(layer, &vec![0.5; layer.len()], "personal layer moved");
            }
        }
    }
}

/// The bus and the cloud accept arbitrary hostile traffic without
/// panicking, and the validating aggregation downstream stays clean.
#[test]
fn transports_never_panic_on_hostile_traffic() {
    let mut rng = StdRng::seed_from_u64(7);
    let chaos = FaultConfig::chaos(3, 0.5);
    let bus = BroadcastBus::with_faults(4, LatencyModel::lan(), &chaos);
    let cloud = CloudAggregator::with_faults(LatencyModel::cloud(), &chaos);
    for _ in 0..300 {
        let u = hostile_update(&mut rng, 4);
        bus.broadcast(u.clone());
        cloud.upload(u);
    }
    let _ = cloud.aggregate();
    let _ = cloud.aggregate_with_quorum(3);
    for id in 0..4 {
        let updates = bus.drain(id);
        let refs: Vec<&ModelUpdate> = updates.iter().map(|u| u.as_ref()).collect();
        let mut model = Toy::new();
        let _ = aggregate::merge_updates(&mut model, &refs);
        for layer in &model.layers {
            assert!(layer.iter().all(|p| p.is_finite()));
        }
        let _ = cloud.download_for(id, 5);
    }
    // Counters observed something (50% chaos over 300 hostile sends).
    let s = bus.stats();
    assert!(s.dropped_total() + s.corrupted + s.delayed > 0);
}

/// The degradation guarantee of the acceptance criteria, at test scale:
/// a fault-free PFDRL run and a 20%-loss run both complete, and the
/// lossy run still achieves positive savings.
#[test]
fn moderate_loss_keeps_the_pipeline_productive() {
    let clean_cfg = SimConfig::tiny(23);
    let clean = run_method(&clean_cfg, EmsMethod::Pfdrl);
    let mut lossy_cfg = clean_cfg.clone();
    lossy_cfg.fault.loss_rate = 0.2;
    lossy_cfg.fault.dropout_rate = 0.2;
    let lossy = run_method(&lossy_cfg, EmsMethod::Pfdrl);
    assert!(clean.ems.account.minutes > 0);
    assert_eq!(lossy.ems.account.minutes, clean.ems.account.minutes);
    assert!(
        lossy.ems.account.standby_saved_kwh > 0.0,
        "20% faults must not collapse savings to zero"
    );
}
