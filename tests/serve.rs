//! Service-mode integration tests: deterministic replay, bounded
//! ingress under backpressure, exact shed accounting, and
//! kill-mid-stream resume — all pinned at the byte level, because the
//! serve contract is that the same input stream produces bit-identical
//! decision logs and snapshots no matter how ingestion is scheduled
//! or how often the process dies.

use pfdrl_core::{train_forecasters, EmsMethod, SimConfig};
use pfdrl_serve::{
    generate_stream, FlakySink, ServeConfig, ServeEngine, ServeReport, VecSink, VecSource,
};
use pfdrl_store::CheckpointStore;
use std::path::PathBuf;

const MINUTES_PER_DAY: u64 = 1440;

/// Tiny serving fleet: 3 homes, 2 devices, 1 priming + 1 evaluated day.
fn short_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::tiny(seed);
    cfg.eval_days = 1;
    cfg.validate();
    cfg
}

fn stream_for(cfg: &SimConfig) -> Vec<String> {
    let mut lines = Vec::new();
    generate_stream(cfg, cfg.eval_start_day - 1, cfg.eval_days + 1, &mut lines);
    lines
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfdrl-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs a full serve session over `lines`, returning the decision log
/// and report. `store_dir` enables snapshotting into that directory.
fn run_serve(
    cfg: &SimConfig,
    scfg: ServeConfig,
    lines: Vec<String>,
    store_dir: Option<&PathBuf>,
) -> (Vec<String>, ServeReport) {
    let forecast = train_forecasters(cfg, EmsMethod::Pfdrl);
    let store = store_dir.map(|dir| CheckpointStore::open(dir, 0).expect("open checkpoint store"));
    let mut engine = ServeEngine::new(cfg.clone(), scfg, EmsMethod::Pfdrl, forecast, store);
    let mut source = VecSource::new(lines);
    let mut sink = VecSink::default();
    let report = engine.run(&mut source, &mut sink).expect("serve run");
    (sink.lines, report)
}

fn latest_snapshot_bytes(dir: &PathBuf) -> Vec<u8> {
    let store = CheckpointStore::open(dir, 0).expect("open store");
    let path = store
        .latest()
        .expect("scan store")
        .expect("a snapshot exists");
    std::fs::read(path).expect("read snapshot")
}

#[test]
fn two_runs_are_byte_identical_including_snapshots() {
    let cfg = short_cfg(42);
    let lines = stream_for(&cfg);
    let dir_a = temp_dir("replay-a");
    let dir_b = temp_dir("replay-b");
    let (log_a, rep_a) = run_serve(&cfg, ServeConfig::default(), lines.clone(), Some(&dir_a));
    let (log_b, rep_b) = run_serve(&cfg, ServeConfig::default(), lines, Some(&dir_b));
    assert!(!log_a.is_empty());
    assert_eq!(log_a, log_b, "decision logs must be byte-identical");
    assert_eq!(rep_a.counters, rep_b.counters);
    assert_eq!(
        latest_snapshot_bytes(&dir_a),
        latest_snapshot_bytes(&dir_b),
        "final snapshots must be byte-identical"
    );
    // The whole span was served and every device-minute decided:
    // (1440 - state_window) minutes x homes x controllable devices.
    let expected = (MINUTES_PER_DAY - cfg.state_window as u64) * cfg.n_residences as u64 * 2;
    assert_eq!(rep_a.decisions, expected);
    assert_eq!(rep_a.completed_days, cfg.eval_days);
    let _ = std::fs::remove_dir_all(dir_a);
    let _ = std::fs::remove_dir_all(dir_b);
}

#[test]
fn decision_log_invariant_to_shards_queue_and_slow_sink() {
    let cfg = short_cfg(7);
    let lines = stream_for(&cfg);
    let (reference, _) = run_serve(&cfg, ServeConfig::default(), lines.clone(), None);

    // One giant shard vs many tiny ones.
    for n_shards in [1usize, 7] {
        let scfg = ServeConfig {
            n_shards,
            ..ServeConfig::default()
        };
        let (log, _) = run_serve(&cfg, scfg, lines.clone(), None);
        assert_eq!(log, reference, "n_shards={n_shards} changed the log");
    }

    // A queue far smaller than a chunk's records: backpressure drains
    // must fire, ingress must stay bounded, and the log must not move.
    let scfg = ServeConfig {
        n_shards: 1,
        queue_capacity: 4,
        ..ServeConfig::default()
    };
    let (log, report) = run_serve(&cfg, scfg, lines.clone(), None);
    assert_eq!(log, reference, "backpressure changed the log");
    assert!(
        report.counters.rejected_backpressure > 0,
        "a 4-slot queue under a 60-minute chunk must hit backpressure"
    );
    assert!(
        report.max_queue_len <= 4,
        "ingress grew past its bound: {}",
        report.max_queue_len
    );

    // A sink that reports Busy twice per line: the engine retries
    // without reordering or dropping.
    let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);
    let mut engine = ServeEngine::new(
        cfg.clone(),
        ServeConfig::default(),
        EmsMethod::Pfdrl,
        forecast,
        None,
    );
    let mut source = VecSource::new(lines);
    let mut sink = FlakySink::new(VecSink::default(), 2);
    let report = engine.run(&mut source, &mut sink).expect("serve run");
    assert_eq!(sink.inner.lines, reference, "slow sink changed the log");
    assert_eq!(report.counters.sink_retries, 2 * report.decisions);
}

#[test]
fn chunk_size_preserves_the_decision_set() {
    let cfg = short_cfg(11);
    let lines = stream_for(&cfg);
    let (log_60, rep_60) = run_serve(&cfg, ServeConfig::default(), lines.clone(), None);
    let scfg_45 = ServeConfig {
        chunk_minutes: 45,
        ..ServeConfig::default()
    };
    let (log_45, rep_45) = run_serve(&cfg, scfg_45, lines, None);
    // Emission order is per-chunk, so the logs differ as sequences —
    // but the decisions themselves (and every counter) must match.
    assert_eq!(rep_60.decisions, rep_45.decisions);
    assert_eq!(rep_60.counters.gap_imputed, rep_45.counters.gap_imputed);
    let mut a = log_60;
    let mut b = log_45;
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "chunk size changed the decision set");
}

#[test]
fn shed_counters_are_exact_and_do_not_perturb_decisions() {
    let cfg = short_cfg(5);
    let clean = stream_for(&cfg);
    let (reference, clean_report) = run_serve(&cfg, ServeConfig::default(), clean.clone(), None);
    assert_eq!(clean_report.counters.shed_malformed, 0);

    // Inject one of each shed class at a point where the cursor has
    // provably advanced past the serve start (minute 1560 of the
    // stream => the [1440, 1500) chunk is closed).
    let mut noisy = clean.clone();
    let at = 120 * cfg.n_residences; // lines for minutes [1440, 1560)
    noisy.splice(
        at..at,
        [
            "this is not telemetry".to_string(),                 // malformed
            "{\"m\":1560,\"h\":0,\"w\":[1.0]}".to_string(),      // wrong device count
            "{\"m\":1560,\"h\":99,\"w\":[1.0,1.0]}".to_string(), // unknown home
            "{\"m\":100,\"h\":0,\"w\":[1.0,1.0]}".to_string(),   // out of span
            "{\"m\":1440,\"h\":0,\"w\":[1.0,1.0]}".to_string(),  // stale
        ],
    );
    let (log, report) = run_serve(&cfg, ServeConfig::default(), noisy, None);
    assert_eq!(report.counters.shed_malformed, 2);
    assert_eq!(report.counters.shed_unknown_home, 1);
    assert_eq!(report.counters.shed_out_of_span, 1);
    assert_eq!(report.counters.shed_stale, 1);
    assert_eq!(
        log, reference,
        "shed records must never change the decision log"
    );
}

#[test]
fn resume_after_kill_matches_uninterrupted_run() {
    let cfg = SimConfig::tiny(42); // 2 evaluated days: die mid day 2
    let lines = stream_for(&cfg);
    let ref_dir = temp_dir("resume-ref");
    let (reference, _) = run_serve(&cfg, ServeConfig::default(), lines.clone(), Some(&ref_dir));

    // "Kill": the stream dries up mid-day at a chunk boundary; the
    // engine closes what it has and writes an epilogue snapshot —
    // exactly the state a --crash-after-minute abort leaves behind
    // (the engine snapshots before aborting).
    let kill_minute = 2 * MINUTES_PER_DAY + 300; // 300 minutes into eval day 2
    let serve_start = (cfg.eval_start_day - 1) * MINUTES_PER_DAY;
    let kill_line = ((kill_minute - serve_start) as usize) * cfg.n_residences;
    let truncated: Vec<String> = lines[..kill_line].to_vec();
    let crash_dir = temp_dir("resume-crash");
    let (crash_log, crash_report) =
        run_serve(&cfg, ServeConfig::default(), truncated, Some(&crash_dir));
    assert_eq!(crash_report.served_minutes, kill_minute - serve_start);

    // Resume from the newest snapshot against the full stream.
    let store = CheckpointStore::open(&crash_dir, 0).expect("open store");
    let snap_path = store.latest().expect("scan").expect("snapshot written");
    let snap = CheckpointStore::load(&snap_path).expect("load snapshot");
    let resume_dir = temp_dir("resume-cont");
    let resume_store = CheckpointStore::open(&resume_dir, 0).expect("open store");
    let mut engine = ServeEngine::resume(
        cfg.clone(),
        ServeConfig::default(),
        EmsMethod::Pfdrl,
        &snap,
        Some(resume_store),
    )
    .expect("resume from snapshot");
    let mut source = VecSource::new(lines);
    let mut sink = VecSink::default();
    let resumed_report = engine.run(&mut source, &mut sink).expect("resumed run");
    assert_eq!(resumed_report.resumed_from_minute, Some(kill_minute));

    // Crash log + resumed log == the uninterrupted log, byte for byte.
    let mut stitched = crash_log;
    stitched.extend(sink.lines);
    assert_eq!(
        stitched, reference,
        "kill + resume must replay into the uninterrupted decision log"
    );
    // And the final snapshots agree byte for byte too.
    assert_eq!(
        latest_snapshot_bytes(&ref_dir),
        latest_snapshot_bytes(&resume_dir),
        "resumed final snapshot diverged from the uninterrupted one"
    );
    for dir in [ref_dir, crash_dir, resume_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn quarantined_homes_are_shed_from_inference() {
    let mut cfg = SimConfig::tiny(13);
    cfg.eval_days = 4;
    cfg.sensor_fault = pfdrl_data::SensorFaultConfig::storm(13, 0.9);
    cfg.validate();
    let lines = stream_for(&cfg); // corruption applied pre-emission
    let (log, report) = run_serve(&cfg, ServeConfig::default(), lines, None);
    assert!(
        report.counters.repaired_values > 0,
        "a 0.9-severity storm must trip value repair"
    );
    assert!(
        report.counters.quarantined_shed > 0,
        "two dirty days must quarantine homes and shed their inference"
    );
    // Shed decisions are really absent from the log, not just counted.
    let full_span =
        (MINUTES_PER_DAY - cfg.state_window as u64) * cfg.n_residences as u64 * 2 * cfg.eval_days;
    assert_eq!(
        report.decisions + report.counters.quarantined_shed,
        full_span,
        "every device-minute is either decided or accounted as shed"
    );
    assert_eq!(log.len() as u64, report.decisions);
}

#[test]
fn committed_fixture_matches_the_generator() {
    // tests/fixtures/serve_tiny.ndjson is the CI smoke stream: the
    // quick config's full serving span. If the generator or config
    // drifts, regenerate the fixture (see CI's serve-smoke job).
    let cfg = SimConfig::tiny(42);
    let mut lines = Vec::new();
    generate_stream(&cfg, cfg.eval_start_day - 1, cfg.eval_days + 1, &mut lines);
    let mut expected = lines.join("\n");
    expected.push('\n');
    let fixture = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/serve_tiny.ndjson"
    ))
    .expect("fixture present");
    assert_eq!(fixture, expected, "committed fixture is stale");
}
