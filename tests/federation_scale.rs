//! Acceptance properties of the parallel federation round engine
//! (`DflRound`): under *any* adversarial fault plan the default
//! `PerHome` mode must stay byte-identical to the retained sequential
//! reference — same model bits, same bus statistics — and the O(N)
//! `SharedSum` fast path must be numerically equivalent on fault-free
//! rounds while remaining run-to-run byte-deterministic.

use pfdrl::fl::{
    dfl_round_reference, AggregationMode, BroadcastBus, DflRound, FaultConfig, HierParams,
    HierarchicalRound, LatencyModel, MergePolicy, PayloadCodec, RoundParams, ShardPlan,
};
use pfdrl::nn::{Activation, Layered, Mlp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fleet(n: usize, seed: u64) -> Vec<Mlp> {
    (0..n)
        .map(|home| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add((home as u64) << 8));
            Mlp::new(
                &[5, 9, 9, 3],
                Activation::Relu,
                Activation::Identity,
                &mut rng,
            )
        })
        .collect()
}

/// Every parameter of every model, as exact bit patterns.
fn bits(models: &[Mlp]) -> Vec<u64> {
    models
        .iter()
        .flat_map(|m| {
            (0..m.layer_count())
                .flat_map(|i| m.export_layer(i).into_iter().map(f64::to_bits))
                .collect::<Vec<u64>>()
        })
        .collect()
}

fn run_engine(
    models: &mut [Mlp],
    engine: &mut DflRound,
    bus: &BroadcastBus,
    round: u64,
    alpha: Option<usize>,
    policy: &MergePolicy,
    mode: AggregationMode,
) {
    let mut col: Vec<&mut Mlp> = models.iter_mut().collect();
    let _ = engine.run(
        &mut col,
        &RoundParams {
            bus,
            round,
            model_id: 0,
            alpha,
            policy,
            mode,
            participants: None,
        },
    );
}

fn run_hier(
    models: &mut [Mlp],
    engine: &mut HierarchicalRound,
    round: u64,
    alpha: Option<usize>,
    policy: &MergePolicy,
) {
    let mut col: Vec<&mut Mlp> = models.iter_mut().collect();
    let _ = engine.run(
        &mut col,
        &HierParams {
            round,
            model_id: 0,
            alpha,
            policy,
            participants: None,
        },
    );
}

proptest! {
    /// The parallel engine in `PerHome` mode is byte-identical to the
    /// sequential reference under arbitrary chaos: loss, corruption,
    /// stragglers (whose parked updates cross round boundaries), churn,
    /// full or base-layer (`alpha`) exchange.
    #[test]
    fn per_home_engine_matches_sequential_reference_under_chaos(
        seed in 0u64..10_000,
        n in 2usize..7,
        chaos in 0.0f64..0.6,
        alpha_pick in 0usize..2,
    ) {
        let fault = FaultConfig::chaos(seed, chaos);
        let alpha = if alpha_pick == 1 { Some(2) } else { None };
        let policy = fault.merge_policy();

        let mut a = fleet(n, seed ^ 0x5EED);
        let mut b = fleet(n, seed ^ 0x5EED);
        prop_assert_eq!(bits(&a), bits(&b));

        let bus_a = BroadcastBus::with_faults(n, LatencyModel::lan(), &fault);
        let bus_b = BroadcastBus::with_faults(n, LatencyModel::lan(), &fault);
        let mut engine = DflRound::new();
        for round in 1..=4u64 {
            run_engine(&mut a, &mut engine, &bus_a, round, alpha, &policy,
                       AggregationMode::PerHome);
            let mut refs: Vec<&mut Mlp> = b.iter_mut().collect();
            dfl_round_reference(&mut refs, &bus_b, round, 0, alpha, &policy);
            prop_assert!(
                bits(&a) == bits(&b),
                "round {} diverged (seed {}, n {}, chaos {:.2}, alpha {:?})",
                round, seed, n, chaos, alpha
            );
        }
        prop_assert_eq!(bus_a.stats(), bus_b.stats());
    }

    /// `SharedSum` on fault-free rounds lands within float-reassociation
    /// tolerance of `PerHome`, and two independent `SharedSum` runs of
    /// the same configuration are byte-identical (the reduction tree is
    /// fixed by fleet size, never by thread count).
    #[test]
    fn shared_sum_is_equivalent_and_deterministic(
        seed in 0u64..10_000,
        n in 2usize..10,
    ) {
        let policy = MergePolicy::default();
        let mut per_home = fleet(n, seed);
        let mut shared = fleet(n, seed);
        let mut shared2 = fleet(n, seed);
        let mut engine = DflRound::new();
        for round in 1..=2u64 {
            for (models, mode) in [
                (&mut per_home, AggregationMode::PerHome),
                (&mut shared, AggregationMode::SharedSum),
                (&mut shared2, AggregationMode::SharedSum),
            ] {
                let bus = BroadcastBus::new(n, LatencyModel::lan());
                run_engine(models, &mut engine, &bus, round, Some(2), &policy, mode);
            }
        }
        prop_assert_eq!(bits(&shared), bits(&shared2));
        for (x, y) in bits(&per_home).iter().zip(bits(&shared).iter()) {
            let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
            prop_assert!(
                (x - y).abs() <= 1e-12 * x.abs().max(1.0),
                "per-home {} vs shared {} (seed {}, n {})",
                x, y, seed, n
            );
        }
    }

    /// The flat-oracle property of the hierarchy: a single-shard
    /// `HierarchicalRound` is byte-identical to the flat `SharedSum`
    /// engine under *any* chaos plan — same model bits after every
    /// round, same traffic statistics (the aggregate-of-aggregates
    /// merge is `mem::take` at K=1, zero re-association; the synthetic
    /// aggregator uplink is only charged when K>1).
    #[test]
    fn single_shard_hierarchical_is_bitwise_flat_shared_sum(
        seed in 0u64..10_000,
        n in 2usize..10,
        chaos in 0.0f64..0.6,
        alpha_pick in 0usize..2,
    ) {
        let fault = FaultConfig::chaos(seed, chaos);
        let alpha = if alpha_pick == 1 { Some(2) } else { None };
        let policy = fault.merge_policy();
        let mut flat = fleet(n, seed ^ 0xF1A7);
        let mut hier = fleet(n, seed ^ 0xF1A7);
        let bus = BroadcastBus::with_faults(n, LatencyModel::lan(), &fault);
        let mut flat_engine = DflRound::new();
        let mut hier_engine = HierarchicalRound::new(
            ShardPlan::round_robin(n, 1), LatencyModel::lan(), &fault);
        for round in 1..=4u64 {
            run_engine(&mut flat, &mut flat_engine, &bus, round, alpha, &policy,
                       AggregationMode::SharedSum);
            run_hier(&mut hier, &mut hier_engine, round, alpha, &policy);
            prop_assert!(
                bits(&flat) == bits(&hier),
                "round {} diverged from the flat oracle (seed {}, n {}, chaos {:.2}, alpha {:?})",
                round, seed, n, chaos, alpha
            );
        }
        prop_assert_eq!(hier_engine.total_stats(), bus.stats());
    }

    /// Multi-shard rounds are run-to-run byte-deterministic and
    /// invariant to the order shards are presented in: a plan built
    /// from scrambled member lists canonicalizes to the same partition
    /// and replays the same bits and the same exported engine state.
    #[test]
    fn multi_shard_hierarchical_is_deterministic_and_shard_order_invariant(
        seed in 0u64..10_000,
        n in 4usize..12,
        shards in 2usize..5,
        chaos in 0.0f64..0.5,
    ) {
        let fault = FaultConfig::chaos(seed, chaos);
        let policy = fault.merge_policy();
        let plan = ShardPlan::round_robin(n, shards);
        let mut scrambled: Vec<Vec<usize>> = plan.members().to_vec();
        let k = scrambled.len();
        scrambled.rotate_left(seed as usize % k);
        for members in &mut scrambled {
            members.reverse();
        }
        let scrambled_plan = ShardPlan::from_members(scrambled);
        prop_assert_eq!(&scrambled_plan, &plan);

        let mut a = fleet(n, seed ^ 0x0DE8);
        let mut b = fleet(n, seed ^ 0x0DE8);
        let mut ea = HierarchicalRound::new(plan, LatencyModel::lan(), &fault);
        let mut eb = HierarchicalRound::new(scrambled_plan, LatencyModel::lan(), &fault);
        for round in 1..=4u64 {
            run_hier(&mut a, &mut ea, round, None, &policy);
            run_hier(&mut b, &mut eb, round, None, &policy);
        }
        prop_assert_eq!(bits(&a), bits(&b));
        prop_assert_eq!(ea.export_state(), eb.export_state());
    }

    /// Chaos fault plans replay bit-identically per seed across
    /// independent multi-shard engines: after every round — including
    /// rounds where straggler deliveries are still parked in per-shard
    /// queues — both the model bits and the full exported engine state
    /// (per-shard counters, bus state, parked updates) are equal.
    #[test]
    fn chaos_fault_plans_replay_bit_identically_per_seed(
        seed in 0u64..10_000,
        n in 4usize..10,
        shards in 2usize..4,
    ) {
        let fault = FaultConfig::chaos(seed, 0.5);
        let policy = fault.merge_policy();
        let mut a = fleet(n, seed ^ 0xC4A0);
        let mut b = fleet(n, seed ^ 0xC4A0);
        let mut ea = HierarchicalRound::new(
            ShardPlan::round_robin(n, shards), LatencyModel::lan(), &fault);
        let mut eb = HierarchicalRound::new(
            ShardPlan::round_robin(n, shards), LatencyModel::lan(), &fault);
        for round in 1..=5u64 {
            run_hier(&mut a, &mut ea, round, None, &policy);
            run_hier(&mut b, &mut eb, round, None, &policy);
            prop_assert_eq!(bits(&a), bits(&b));
            prop_assert_eq!(ea.export_state(), eb.export_state());
        }
    }

    /// Compression × chaos: a seeded fault plan replays bit-identically
    /// in every codec mode — the compressed payloads, the fault fates
    /// acting on them, and the merged model bits are all pure functions
    /// of the seed. Covers single-shard and multi-shard topologies.
    #[test]
    fn compressed_chaos_replays_bit_identically_per_seed_in_every_codec(
        seed in 0u64..10_000,
        n in 4usize..10,
        shards in 1usize..4,
        codec_pick in 0usize..3,
    ) {
        let codec = [
            PayloadCodec::QuantizedI8 { per_layer_scale: true },
            PayloadCodec::QuantizedI8 { per_layer_scale: false },
            PayloadCodec::TopK { fraction: 0.2 },
        ][codec_pick];
        let fault = FaultConfig::chaos(seed, 0.5);
        let policy = fault.merge_policy();
        let mut a = fleet(n, seed ^ 0xC0DEC);
        let mut b = fleet(n, seed ^ 0xC0DEC);
        let mut ea = HierarchicalRound::with_codec(
            ShardPlan::round_robin(n, shards), LatencyModel::lan(), &fault, codec);
        let mut eb = HierarchicalRound::with_codec(
            ShardPlan::round_robin(n, shards), LatencyModel::lan(), &fault, codec);
        for round in 1..=5u64 {
            run_hier(&mut a, &mut ea, round, None, &policy);
            run_hier(&mut b, &mut eb, round, None, &policy);
            prop_assert!(
                bits(&a) == bits(&b),
                "round {} diverged (seed {}, n {}, shards {}, codec {})",
                round, seed, n, shards, codec.label()
            );
            prop_assert_eq!(ea.export_state(), eb.export_state());
        }
        // Compression really happened: wire bytes strictly below the
        // logical (pre-compression) bytes whenever anything was sent.
        let stats = ea.total_stats();
        if stats.logical_bytes > 0 {
            prop_assert!(stats.bytes < stats.logical_bytes);
        }
    }

    /// A corrupted *compressed* payload demotes the receiver to the
    /// validated per-home fallback exactly as a corrupted raw payload
    /// does: fault fates are pure per-edge hashes, independent of the
    /// payload bytes, so the fast-path/fallback split per round must
    /// be identical between Raw and every compressed codec on the same
    /// seed.
    #[test]
    fn corruption_demotes_compressed_payloads_exactly_as_raw(
        seed in 0u64..10_000,
        n in 3usize..8,
    ) {
        let fault = FaultConfig::chaos(seed, 0.5);
        let policy = fault.merge_policy();
        let codecs = [
            PayloadCodec::Raw,
            PayloadCodec::QuantizedI8 { per_layer_scale: true },
            PayloadCodec::TopK { fraction: 0.3 },
        ];
        let mut splits: Vec<Vec<(usize, usize)>> = Vec::new();
        for codec in codecs {
            let mut models = fleet(n, seed ^ 0xDE40);
            let bus = BroadcastBus::with_codec(n, LatencyModel::lan(), &fault, codec);
            let mut engine = DflRound::new();
            let mut per_round = Vec::new();
            for round in 1..=4u64 {
                let mut col: Vec<&mut Mlp> = models.iter_mut().collect();
                let outcome = engine.run(
                    &mut col,
                    &RoundParams {
                        bus: &bus,
                        round,
                        model_id: 0,
                        alpha: None,
                        policy: &policy,
                        mode: AggregationMode::SharedSum,
                        participants: None,
                    },
                );
                per_round.push((outcome.fast_path_homes, outcome.fallback_homes));
            }
            splits.push(per_round);
        }
        prop_assert!(
            splits[1] == splits[0] && splits[2] == splits[0],
            "fast/fallback split diverged from raw (seed {}, n {}): raw {:?}, q8 {:?}, topk {:?}",
            seed, n, splits[0], splits[1], splits[2]
        );
    }
}
