//! Acceptance properties of the parallel federation round engine
//! (`DflRound`): under *any* adversarial fault plan the default
//! `PerHome` mode must stay byte-identical to the retained sequential
//! reference — same model bits, same bus statistics — and the O(N)
//! `SharedSum` fast path must be numerically equivalent on fault-free
//! rounds while remaining run-to-run byte-deterministic.

use pfdrl::fl::{
    dfl_round_reference, AggregationMode, BroadcastBus, DflRound, FaultConfig, LatencyModel,
    MergePolicy, RoundParams,
};
use pfdrl::nn::{Activation, Layered, Mlp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fleet(n: usize, seed: u64) -> Vec<Mlp> {
    (0..n)
        .map(|home| {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add((home as u64) << 8));
            Mlp::new(
                &[5, 9, 9, 3],
                Activation::Relu,
                Activation::Identity,
                &mut rng,
            )
        })
        .collect()
}

/// Every parameter of every model, as exact bit patterns.
fn bits(models: &[Mlp]) -> Vec<u64> {
    models
        .iter()
        .flat_map(|m| {
            (0..m.layer_count())
                .flat_map(|i| m.export_layer(i).into_iter().map(f64::to_bits))
                .collect::<Vec<u64>>()
        })
        .collect()
}

fn run_engine(
    models: &mut [Mlp],
    engine: &mut DflRound,
    bus: &BroadcastBus,
    round: u64,
    alpha: Option<usize>,
    policy: &MergePolicy,
    mode: AggregationMode,
) {
    let mut col: Vec<&mut Mlp> = models.iter_mut().collect();
    let _ = engine.run(
        &mut col,
        &RoundParams {
            bus,
            round,
            model_id: 0,
            alpha,
            policy,
            mode,
            participants: None,
        },
    );
}

proptest! {
    /// The parallel engine in `PerHome` mode is byte-identical to the
    /// sequential reference under arbitrary chaos: loss, corruption,
    /// stragglers (whose parked updates cross round boundaries), churn,
    /// full or base-layer (`alpha`) exchange.
    #[test]
    fn per_home_engine_matches_sequential_reference_under_chaos(
        seed in 0u64..10_000,
        n in 2usize..7,
        chaos in 0.0f64..0.6,
        alpha_pick in 0usize..2,
    ) {
        let fault = FaultConfig::chaos(seed, chaos);
        let alpha = if alpha_pick == 1 { Some(2) } else { None };
        let policy = fault.merge_policy();

        let mut a = fleet(n, seed ^ 0x5EED);
        let mut b = fleet(n, seed ^ 0x5EED);
        prop_assert_eq!(bits(&a), bits(&b));

        let bus_a = BroadcastBus::with_faults(n, LatencyModel::lan(), &fault);
        let bus_b = BroadcastBus::with_faults(n, LatencyModel::lan(), &fault);
        let mut engine = DflRound::new();
        for round in 1..=4u64 {
            run_engine(&mut a, &mut engine, &bus_a, round, alpha, &policy,
                       AggregationMode::PerHome);
            let mut refs: Vec<&mut Mlp> = b.iter_mut().collect();
            dfl_round_reference(&mut refs, &bus_b, round, 0, alpha, &policy);
            prop_assert!(
                bits(&a) == bits(&b),
                "round {} diverged (seed {}, n {}, chaos {:.2}, alpha {:?})",
                round, seed, n, chaos, alpha
            );
        }
        prop_assert_eq!(bus_a.stats(), bus_b.stats());
    }

    /// `SharedSum` on fault-free rounds lands within float-reassociation
    /// tolerance of `PerHome`, and two independent `SharedSum` runs of
    /// the same configuration are byte-identical (the reduction tree is
    /// fixed by fleet size, never by thread count).
    #[test]
    fn shared_sum_is_equivalent_and_deterministic(
        seed in 0u64..10_000,
        n in 2usize..10,
    ) {
        let policy = MergePolicy::default();
        let mut per_home = fleet(n, seed);
        let mut shared = fleet(n, seed);
        let mut shared2 = fleet(n, seed);
        let mut engine = DflRound::new();
        for round in 1..=2u64 {
            for (models, mode) in [
                (&mut per_home, AggregationMode::PerHome),
                (&mut shared, AggregationMode::SharedSum),
                (&mut shared2, AggregationMode::SharedSum),
            ] {
                let bus = BroadcastBus::new(n, LatencyModel::lan());
                run_engine(models, &mut engine, &bus, round, Some(2), &policy, mode);
            }
        }
        prop_assert_eq!(bits(&shared), bits(&shared2));
        for (x, y) in bits(&per_home).iter().zip(bits(&shared).iter()) {
            let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
            prop_assert!(
                (x - y).abs() <= 1e-12 * x.abs().max(1.0),
                "per-home {} vs shared {} (seed {}, n {})",
                x, y, seed, n
            );
        }
    }
}
