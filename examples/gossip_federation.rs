//! Sparse gossip federation — an extension beyond the paper's full
//! broadcast. Compares full broadcast, ring, and random-k gossip on
//! traffic volume and on how fast independently-initialized models reach
//! consensus.
//!
//! ```text
//! cargo run --release --example gossip_federation
//! ```

use pfdrl_fl::{aggregate, BroadcastBus, LatencyModel, ModelUpdate, Topology};
use pfdrl_nn::{Activation, Layered, Mlp};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 12;

/// Max pairwise parameter distance on layer 0 — the consensus measure.
fn spread(models: &[Mlp]) -> f64 {
    let mut worst: f64 = 0.0;
    for a in models {
        for b in models {
            let la = a.export_layer(0);
            let lb = b.export_layer(0);
            let d = la
                .iter()
                .zip(lb.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
            worst = worst.max(d);
        }
    }
    worst
}

fn fresh_models() -> Vec<Mlp> {
    (0..N)
        .map(|i| {
            Mlp::new(
                &[8, 16, 3],
                Activation::Relu,
                Activation::Identity,
                &mut StdRng::seed_from_u64(i as u64),
            )
        })
        .collect()
}

/// Runs `rounds` gossip rounds under a topology; returns (final spread,
/// total bytes).
fn run(topology_for_round: impl Fn(u64) -> Topology, rounds: u64) -> (f64, u64) {
    let mut models = fresh_models();
    let bus = BroadcastBus::new(N, LatencyModel::lan());
    for round in 0..rounds {
        let topo = topology_for_round(round);
        // Point-to-point sends along the topology (the bus delivers to
        // everyone, so non-peers discard by sender id).
        let peer_lists: Vec<Vec<usize>> = (0..N).map(|i| topo.peers(i, N)).collect();
        for (i, m) in models.iter().enumerate() {
            bus.broadcast(aggregate::snapshot_update(m, i, round, 0));
        }
        for (i, m) in models.iter_mut().enumerate() {
            let updates = bus.drain(i);
            let refs: Vec<&ModelUpdate> = updates
                .iter()
                .map(|u| u.as_ref())
                .filter(|u| peer_lists[u.sender].contains(&i))
                .collect();
            aggregate::merge_updates(m, &refs);
        }
    }
    // Bytes actually *used* scale with topology degree; report the
    // topology's own delivery count times message size for fairness.
    let msg_bytes = aggregate::snapshot_update(&models[0], 0, 0, 0).byte_size() as u64;
    let topo = topology_for_round(0);
    let bytes = topo.deliveries_per_round(N) as u64 * msg_bytes * rounds;
    (spread(&models), bytes)
}

fn main() {
    let initial = spread(&fresh_models());
    println!("{N} residences, initial parameter spread {initial:.4}\n");
    println!(
        "{:>14} | {:>8} | {:>14} | {:>12}",
        "topology", "rounds", "final spread", "traffic KiB"
    );
    println!("{}", "-".repeat(58));
    for rounds in [1u64, 3, 6] {
        let (s, b) = run(|_| Topology::FullBroadcast, rounds);
        println!(
            "{:>14} | {rounds:>8} | {s:>14.6} | {:>12.1}",
            "full",
            b as f64 / 1024.0
        );
        let (s, b) = run(|_| Topology::Ring, rounds);
        println!(
            "{:>14} | {rounds:>8} | {s:>14.6} | {:>12.1}",
            "ring",
            b as f64 / 1024.0
        );
        let (s, b) = run(
            |r| Topology::RandomK {
                k: 3,
                round_salt: r,
            },
            rounds,
        );
        println!(
            "{:>14} | {rounds:>8} | {s:>14.6} | {:>12.1}",
            "random-3",
            b as f64 / 1024.0
        );
        println!();
    }
    println!("full broadcast reaches consensus in one round at N^2 cost;");
    println!("gossip converges geometrically at a fraction of the traffic.");
}
