//! Quickstart: run the full PFDRL pipeline on a small synthetic
//! neighbourhood and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pfdrl_core::runner::run_method_with_forecast;
use pfdrl_core::{evaluate_forecast, EmsMethod, SimConfig};

fn main() {
    // A small neighbourhood: 5 homes, 2 standby-heavy devices each,
    // 3 days of forecaster training, 4 days of EMS operation.
    let mut cfg = SimConfig::tiny(7);
    cfg.n_residences = 5;
    cfg.train_days = 3;
    cfg.eval_start_day = 3;
    cfg.eval_days = 4;
    cfg.validate();

    println!(
        "PFDRL quickstart: {} homes, {} devices each",
        cfg.n_residences,
        cfg.devices.len()
    );
    println!("training forecasters (decentralized federated learning)...");
    let (run, forecast) = run_method_with_forecast(&cfg, EmsMethod::Pfdrl);

    let eval = evaluate_forecast(&cfg, &forecast);
    println!();
    println!("load-forecasting accuracy: {:.1}%", 100.0 * eval.mean);
    println!(
        "standby energy available:  {:.3} kWh over {} device-days",
        run.ems.account.standby_total_kwh,
        cfg.n_residences as u64 * cfg.devices.len() as u64 * cfg.eval_days,
    );
    println!(
        "standby energy saved:      {:.3} kWh ({:.1}%)",
        run.ems.account.standby_saved_kwh,
        100.0 * run.ems.account.saved_fraction().unwrap_or(0.0)
    );
    println!(
        "converged daily saving:    {:.1}% of standby energy",
        100.0 * run.converged_saved_fraction()
    );
    println!(
        "comfort violations:        {} of {} minutes",
        run.ems.account.comfort_violation_minutes, run.ems.account.minutes
    );
    println!();
    println!("per-day saved fraction (the DRL learns online):");
    for (day, f) in run.ems.daily_saved_fraction.iter().enumerate() {
        let bar: String = std::iter::repeat_n('#', (f * 40.0) as usize).collect();
        println!("  day {:>2}: {:>5.1}% {bar}", day + 1, 100.0 * f);
    }
}
