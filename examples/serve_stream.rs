//! Service mode: replay a synthetic fleet telemetry stream through the
//! streaming serve engine and report throughput.
//!
//! Generates a minute-major NDJSON stream for an N-home fleet (one
//! priming day plus the evaluated span), feeds it to [`ServeEngine`],
//! and prints decisions/sec plus the final day's saved-standby
//! fraction. Pass a home count to scale the fleet:
//!
//! ```text
//! cargo run --release --example serve_stream          # 16 homes
//! cargo run --release --example serve_stream -- 256   # neighbourhood
//! ```
//!
//! [`ServeEngine`]: pfdrl::serve::ServeEngine

use pfdrl::core::{train_forecasters, EmsMethod, SimConfig};
use pfdrl::serve::{generate_stream, ServeConfig, ServeEngine, VecSink, VecSource};

fn main() {
    let homes: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("home count must be an integer"))
        .unwrap_or(16);
    let mut cfg = SimConfig::tiny(42);
    cfg.n_residences = homes;
    cfg.validate();

    println!("training forecasters for {homes} homes...");
    let forecast = train_forecasters(&cfg, EmsMethod::Pfdrl);

    // The serving span: the priming day before eval_start_day, then
    // every evaluated day.
    let mut lines = Vec::new();
    generate_stream(&cfg, cfg.eval_start_day - 1, cfg.eval_days + 1, &mut lines);
    println!(
        "streaming {} telemetry lines ({} simulated days)...",
        lines.len(),
        cfg.eval_days + 1
    );

    let mut engine = ServeEngine::new(
        cfg,
        ServeConfig::default(),
        EmsMethod::Pfdrl,
        forecast,
        None,
    );
    let mut source = VecSource::new(lines);
    let mut sink = VecSink::default();
    let report = engine
        .run(&mut source, &mut sink)
        .expect("in-memory serve cannot fail");

    println!(
        "served {} minutes: {} decisions in {:.2}s = {:.0} decisions/sec",
        report.served_minutes, report.decisions, report.wall_s, report.decisions_per_sec
    );
    println!(
        "completed days: {}, federation rounds: {}, gap-imputed device-minutes: {}",
        report.completed_days, report.fed_rounds, report.counters.gap_imputed
    );
    println!(
        "final saved-standby fraction: {:.3} (mean {:.3})",
        report.final_saved_fraction, report.mean_saved_fraction
    );
    println!("first decision: {}", sink.lines.first().expect("decisions"));
    println!("last decision:  {}", sink.lines.last().expect("decisions"));
}
