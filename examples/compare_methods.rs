//! Compare the five EMS architectures (Local, Cloud, FL, FRL, PFDRL) on
//! the same neighbourhood — a miniature of the paper's Figure 9 and
//! Table 2 story.
//!
//! ```text
//! cargo run --release --example compare_methods
//! ```

use pfdrl_core::runner::run_method;
use pfdrl_core::{EmsMethod, SimConfig};

fn main() {
    let mut cfg = SimConfig::tiny(11);
    cfg.n_residences = 4;
    cfg.train_days = 3;
    cfg.eval_start_day = 3;
    cfg.eval_days = 3;
    cfg.validate();

    println!(
        "{:>6} | {:>6} | {:>8} | {:>9} | {:>10} | {:>11}",
        "method", "saved%", "kWh/home", "comm KiB", "overhead s", "cloud-free?"
    );
    println!("{}", "-".repeat(68));
    for method in EmsMethod::ALL {
        let run = run_method(&cfg, method);
        let saved_pct = 100.0 * run.converged_saved_fraction();
        let kwh_per_home = run.ems.account.standby_saved_kwh / cfg.n_residences as f64;
        let comm_kib = (run.forecast_bytes + run.ems.comm_bytes) as f64 / 1024.0;
        println!(
            "{:>6} | {:>5.1}% | {:>8.4} | {:>9.1} | {:>10.2} | {:>11}",
            run.method,
            saved_pct,
            kwh_per_home,
            comm_kib,
            run.total_overhead_s(),
            if method.stays_in_local_area() {
                "yes"
            } else {
                "no"
            },
        );
    }
    println!();
    println!("Table 2 recap: only PFDRL keeps data AND models in the local");
    println!("area while still sharing EMS plans and personalizing per home.");
}
