//! Crash-recoverable runs: checkpoint a PFDRL simulation to durable
//! `PFDS` snapshots, then resume from an intermediate snapshot and
//! verify the resumed run reproduces the uninterrupted one bit for bit.
//!
//! ```text
//! cargo run --release --example resume_run
//! ```

use pfdrl_core::{run_method, run_method_resume_from, EmsMethod, SimConfig};
use pfdrl_store::CheckpointStore;

fn main() {
    let mut cfg = SimConfig::tiny(7);
    cfg.eval_days = 3;
    cfg.validate();

    // 1. Reference: the uninterrupted run.
    println!("running reference (no checkpoints)...");
    let reference = run_method(&cfg, EmsMethod::Pfdrl).result();

    // 2. Checkpointed run: a snapshot after every simulated day.
    let dir = std::env::temp_dir().join(format!("pfdrl-resume-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut ckpt_cfg = cfg.clone();
    ckpt_cfg.checkpoint.dir = Some(dir.to_string_lossy().into_owned());
    ckpt_cfg.checkpoint.every_days = 1;
    ckpt_cfg.checkpoint.keep_last = 0; // keep every snapshot

    println!("running with checkpoints in {}...", dir.display());
    let checkpointed = pfdrl_core::run_method_resumable(&ckpt_cfg, EmsMethod::Pfdrl)
        .expect("checkpointed run failed");
    assert_eq!(checkpointed.resumed_from_day, None);

    let store = CheckpointStore::open(&dir, 0).expect("open store");
    let snapshots = store.list().expect("list snapshots");
    println!("wrote {} snapshots:", snapshots.len());
    for s in &snapshots {
        let snap = CheckpointStore::load(s).expect("snapshot must load");
        println!(
            "  {} — day {}, fed round {}, {} homes",
            s.file_name().unwrap().to_string_lossy(),
            snap.meta.next_day,
            snap.meta.fed_round,
            snap.meta.n_homes,
        );
    }

    // 3. Resume from the *first* (earliest) snapshot, as a crashed run
    //    would, and replay the remaining days.
    let earliest = &snapshots[0];
    println!("resuming from {}...", earliest.display());
    let resumed = run_method_resume_from(&cfg, EmsMethod::Pfdrl, earliest).expect("resume failed");
    println!(
        "resumed at day {}, replayed the rest",
        resumed.resumed_from_day.unwrap()
    );

    // 4. The resumed run must be bit-identical to the reference — same
    //    energy accounts, same per-day curves, same simulated comm time.
    let resumed = resumed.run.result();
    assert_eq!(reference, resumed, "resumed run diverged from reference");
    assert_eq!(
        serde_json::to_string(&reference).unwrap(),
        serde_json::to_string(&resumed).unwrap(),
    );
    println!();
    println!(
        "bit-identical: saved {:.3} kWh, {:.3} comm seconds in both runs",
        reference.account.standby_saved_kwh, reference.ems_comm_s,
    );

    std::fs::remove_dir_all(&dir).ok();
}
