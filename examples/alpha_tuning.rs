//! Sweep the personalization split α — the paper's Figure 2 experiment
//! at example scale. With more base layers, residences share more of the
//! Q-network; the rest stays personal.
//!
//! ```text
//! cargo run --release --example alpha_tuning
//! ```

use pfdrl_core::experiment::fig2_alpha_sweep;
use pfdrl_core::SimConfig;

fn main() {
    let mut cfg = SimConfig::tiny(19);
    cfg.n_residences = 4;
    cfg.eval_days = 3;
    cfg.validate();
    let total_layers = cfg.dqn.hidden_layers + 1;

    println!(
        "sweeping alpha over 1..={} base layers (of {} total Q-network layers)",
        cfg.dqn.hidden_layers + 1,
        total_layers
    );
    let alphas: Vec<usize> = (1..=total_layers).collect();
    let series = fig2_alpha_sweep(&cfg, &alphas);

    println!("\n{:>6} | {:>22}", "alpha", "saved standby energy");
    println!("{}", "-".repeat(32));
    for (alpha, saved) in &series.points {
        let bar: String = std::iter::repeat_n('#', (saved * 30.0) as usize).collect();
        println!("{:>6.0} | {:>6.1}% {bar}", alpha, 100.0 * saved);
    }
    println!(
        "\nbest split: {} base layers shared, {} kept personal",
        series.argmax(),
        total_layers as f64 - series.argmax()
    );
    println!("(the paper finds alpha = 6 of 8 hidden layers optimal)");
}
