//! Import a Pecan Street Dataport-style CSV and run load forecasting on
//! the real data instead of the synthetic generator.
//!
//! ```text
//! cargo run --release --example dataport_import -- path/to/export.csv
//! ```
//!
//! Without an argument this writes and consumes a small demo CSV so the
//! example is runnable out of the box.

use pfdrl_data::csv::load_dataport_csv;
use pfdrl_data::dataset::{build_windows_transformed, TargetTransform};
use pfdrl_data::{DeviceType, GeneratorConfig, TraceGenerator};
use pfdrl_forecast::metrics::paper_accuracy;
use pfdrl_forecast::{ForecastMethod, TrainConfig};
use std::io::BufReader;

fn demo_csv() -> String {
    // Fabricate a Dataport-style export from the synthetic generator so
    // the round trip (generate -> CSV -> load -> train) is demonstrated.
    let gen = TraceGenerator::new(GeneratorConfig::with_seed(9));
    let mut out = String::from("dataid,minute,device,watts\n");
    for day in 0..4u64 {
        let trace = gen.day_trace(0, 0, day);
        for (m, w) in trace.watts.iter().enumerate() {
            out.push_str(&format!("26,{},tv,{:.2}\n", day as usize * 1440 + m, w));
        }
    }
    out
}

fn main() {
    let arg = std::env::args().nth(1);
    let content = match &arg {
        Some(path) => {
            println!("loading {path}");
            std::fs::read_to_string(path).expect("readable CSV file")
        }
        None => {
            println!("no CSV given — generating a demo export from the synthetic generator");
            demo_csv()
        }
    };

    let series =
        load_dataport_csv(BufReader::new(content.as_bytes())).expect("well-formed Dataport CSV");
    println!("loaded {} (household, device) series", series.len());

    for ((dataid, device), s) in &series {
        if s.watts.len() < 2000 {
            println!(
                "  household {dataid} {}: too short, skipping",
                device.name()
            );
            continue;
        }
        let scale = match device {
            DeviceType::Tv => DeviceType::Tv.nominal_spec().on_watts,
            d => d.nominal_spec().on_watts,
        };
        let set = build_windows_transformed(&s.watts, scale, 16, 15, 0, TargetTransform::default())
            .strided(7);
        let (train, test) = set.split(0.8);
        let mut model = ForecastMethod::Lstm.build(set.feature_dim(), TrainConfig::quick(1));
        let report = model.fit(&train);
        let preds: Vec<f64> = model
            .predict(&test.inputs)
            .iter()
            .map(|p| test.to_watts(*p))
            .collect();
        let real: Vec<f64> = test.targets.iter().map(|t| test.to_watts(*t)).collect();
        let acc = paper_accuracy(&preds, &real, 1.0).unwrap_or(0.0);
        println!(
            "  household {dataid} {}: {} samples, LSTM accuracy {:.1}% ({} epochs)",
            device.name(),
            set.len(),
            100.0 * acc,
            report.epochs
        );
    }
}
