//! Bake-off of the four load-forecasting algorithms (LR, SVM, BP, LSTM)
//! on one device's trace — the Figure 5 story at example scale.
//!
//! ```text
//! cargo run --release --example forecast_bakeoff
//! ```

use pfdrl_data::dataset::{build_windows_transformed, TargetTransform};
use pfdrl_data::{GeneratorConfig, TraceGenerator};
use pfdrl_forecast::metrics::{accuracy_cdf, paper_accuracies};
use pfdrl_forecast::{ForecastMethod, TrainConfig};

fn main() {
    // One home's TV over ten days; train on eight, test on two.
    let gen = TraceGenerator::new(GeneratorConfig::with_seed(3));
    let home = gen.household(0);
    let spec = &home.devices[0];
    println!(
        "device: {} (on {:.0} W, standby {:.1} W), archetype {:?}",
        spec.device_type.name(),
        spec.on_watts,
        spec.standby_watts,
        home.archetype
    );

    let watts = gen.multi_day_watts(0, 0, 0..10);
    let set =
        build_windows_transformed(&watts, spec.on_watts, 16, 15, 0, TargetTransform::default())
            .strided(7);
    let (train, test) = set.split(0.8);
    println!(
        "{} training samples, {} test samples, horizon 15 min\n",
        train.len(),
        test.len()
    );

    println!(
        "{:>6} | {:>9} | {:>8} | {:>7}",
        "method", "accuracy", "epochs", "loss"
    );
    println!("{}", "-".repeat(40));
    let mut accs: Vec<(ForecastMethod, Vec<f64>)> = Vec::new();
    for method in ForecastMethod::ALL {
        let cfg = TrainConfig {
            max_epochs: 10,
            ..TrainConfig::with_seed(5)
        };
        let mut model = method.build(set.feature_dim(), cfg);
        let report = model.fit(&train);
        let preds: Vec<f64> = model
            .predict(&test.inputs)
            .iter()
            .map(|p| test.to_watts(*p))
            .collect();
        let real: Vec<f64> = test.targets.iter().map(|t| test.to_watts(*t)).collect();
        let samples = paper_accuracies(&preds, &real, 1.0);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{:>6} | {:>8.1}% | {:>8} | {:>7.4}",
            method.name(),
            100.0 * mean,
            report.epochs,
            report.final_loss
        );
        accs.push((method, samples));
    }

    println!("\naccuracy CDF (fraction of predictions at or below accuracy):");
    print!("{:>8}", "acc");
    for (m, _) in &accs {
        print!("  {:>6}", m.name());
    }
    println!();
    let cdfs: Vec<Vec<(f64, f64)>> = accs.iter().map(|(_, a)| accuracy_cdf(a, 6)).collect();
    for i in 0..6 {
        print!("{:>7.0}%", cdfs[0][i].0 * 100.0);
        for cdf in &cdfs {
            print!("  {:>6.3}", cdf[i].1);
        }
        println!();
    }
    println!("\n(lower CDF at high accuracy = better; expect LR worst, LSTM best)");
}
