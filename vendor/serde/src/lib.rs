//! Vendored, dependency-free stand-in for the `serde` subset this
//! workspace uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, serialized through a self-describing [`Value`] tree that
//! the companion `serde_json` shim renders and parses.
//!
//! The data model is intentionally simpler than real serde (no visitor
//! machinery, no zero-copy deserialization, no lifetimes on
//! [`Deserialize`]); the derive macro in `serde_derive` targets exactly
//! these traits. Supported `#[serde(...)]` field attributes: `skip`,
//! `default`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// Self-describing serialized tree (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Integers keep full precision separately from floats so `u64`
    /// seeds and counters round-trip exactly.
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered map, so rendered JSON is stable.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Finds `key` in an object's field list (used by derived code).
pub fn value_get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields; overridden by `Option` (absent ⇒
    /// `None`), errors for everything else unless `#[serde(default)]`.
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{name}`")))
    }
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // Non-finite floats render as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

// ----------------------------------------------------------- scalars, text

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected single-char string, got {other:?}"))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        let mut fields: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_string(), v.serialize())).collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} items", items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_serde_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(u64::deserialize(&42u64.serialize()).unwrap(), 42);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(String::deserialize(&"hi".to_string().serialize()).unwrap(), "hi");
    }

    #[test]
    fn u64_keeps_full_precision() {
        let big = u64::MAX - 3;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }

    #[test]
    fn option_absent_field_is_none() {
        let missing: Option<u32> = Deserialize::missing_field("x").unwrap();
        assert_eq!(missing, None);
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn vec_and_tuple_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Deserialize::deserialize(&v.serialize()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn out_of_range_int_rejected() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
    }
}
