//! Vendored, dependency-free stand-in for the `rayon` prelude used by
//! this workspace. `par_iter` / `par_iter_mut` / `into_par_iter` resolve
//! to the ordinary sequential iterators, so all adapter chains (`map`,
//! `zip`, `enumerate`, `for_each`, `collect`, …) come from [`Iterator`]
//! unchanged.
//!
//! Sequential execution trades wall-clock speed for exact determinism —
//! which the fault-injection determinism guarantee in `pfdrl-fl` relies
//! on anyway. A real thread pool can be restored by swapping the patch
//! back to upstream rayon once the build environment has registry
//! access.

pub mod prelude {
    /// `into_par_iter()` for any owned collection or range.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` for anything iterable by shared reference.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
    {
        type Iter = <&'data I as IntoIterator>::IntoIter;

        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for anything iterable by unique reference.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
    {
        type Iter = <&'data mut I as IntoIterator>::IntoIter;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential analogue of `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of "threads" in the (sequential) pool.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn into_par_iter_works_on_ranges() {
        let total: u64 = (0u64..10).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn zip_and_enumerate_compose() {
        let mut a = vec![0; 3];
        let b = vec![5, 6, 7];
        a.par_iter_mut().zip(b.par_iter()).for_each(|(x, y)| *x = *y);
        assert_eq!(a, b);
        let idx: Vec<usize> = b.par_iter().enumerate().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }
}
