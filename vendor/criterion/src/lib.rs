//! Vendored, dependency-free stand-in for the `criterion` API subset
//! used by this workspace's benches. Instead of full statistical
//! sampling it times a fixed number of iterations per benchmark and
//! prints mean wall-clock time — enough to compare kernels locally and
//! to keep `cargo build --benches` compiling offline.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { total: Duration::ZERO, iters: 0 };
    // One untimed warm-up pass, then the measured samples.
    f(&mut bencher);
    bencher.total = Duration::ZERO;
    bencher.iters = 0;
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean = if bencher.iters > 0 {
        bencher.total / bencher.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench {id:<48} {mean:>12?}/iter ({} iters)", bencher.iters);
}

pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.total += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.total += start.elapsed();
        self.iters += 1;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __criterion = $config;
            $($target(&mut __criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        // 1 warm-up pass + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_run_batched_routines() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut total = 0usize;
        group.bench_function(format!("case-{}", 1), |b| {
            b.iter_batched(|| vec![1usize, 2, 3], |v| total += v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(total, 9);
    }
}
