//! Vendored, dependency-free stand-in for the `proptest` subset this
//! workspace uses: the `proptest!` macro with `arg in strategy`
//! bindings, numeric range strategies, tuple strategies,
//! `prop::collection::vec`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` macros.
//!
//! No shrinking: a failing case panics with the assertion message and
//! the deterministic per-test seed, which is enough to reproduce (the
//! RNG is seeded from the test name, so reruns replay the same cases).

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates one value per invocation from a seeded RNG.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi - lo + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (lo + off) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let u = rng.unit_f64() as $t;
                    self.start + u * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let u = rng.unit_f64() as $t;
                    self.start() + u * (self.end() - self.start())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    /// Constant strategy (always yields a clone of the same value).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );

    /// Length spec for [`vec`]: a fixed size or a half-open range.
    pub trait IntoSizeRange {
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            self.sample(rng)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            self.sample(rng)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// SplitMix64-based deterministic RNG, seeded per test from the
    /// test's name so every run replays the same case sequence.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1) from the top 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Outcome of a single generated case inside `proptest!`.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case, draw another.
    Reject,
    /// An assertion failed: abort the test with this message.
    Fail(String),
}

/// Number of accepted cases each `proptest!` test runs.
pub const CASES: u32 = 96;

/// Hard cap on draws (accepted + rejected) so a `prop_assume!` that
/// rejects everything terminates with an error instead of spinning.
pub const MAX_ATTEMPTS: u32 = CASES * 16;

pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted = 0u32;
                let mut __attempts = 0u32;
                while __accepted < $crate::CASES {
                    __attempts += 1;
                    assert!(
                        __attempts <= $crate::MAX_ATTEMPTS,
                        "proptest `{}`: too many rejected cases ({} accepted of {} needed)",
                        stringify!($name), __accepted, $crate::CASES
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest `{}` failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} ({}:{})",
                    stringify!($cond), file!(), line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} ({}:{})",
                    stringify!($left), stringify!($right), __l, __r, file!(), line!()
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_spec(
            fixed in prop::collection::vec(0u32..10, 8),
            ranged in prop::collection::vec(0.0f64..1.0, 2..5),
        ) {
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 5);
        }

        #[test]
        fn assume_discards_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn tuples_sample_elementwise(pair in (0i32..5, 10i32..20)) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
