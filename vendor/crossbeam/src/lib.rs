//! Vendored, dependency-free stand-in for the `crossbeam::channel`
//! subset used by this workspace: multi-producer multi-consumer
//! unbounded channels with cloneable senders *and* receivers, plus
//! `try_recv` disconnection semantics.
//!
//! Implementation: a mutex-protected `VecDeque` with sender/receiver
//! reference counts — not lock-free like real crossbeam, but correct,
//! `Send + Sync`, and plenty fast for the simulated federation bus.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    /// The sending half.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the rejected message like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(msg) => Ok(msg),
                None => {
                    if self.chan.senders.load(Ordering::Acquire) == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn len(&self) -> usize {
            self.chan.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_and_try_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn dropping_all_senders_disconnects() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn dropping_all_receivers_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn concurrent_senders_deliver_everything() {
            let (tx, rx) = unbounded();
            std::thread::scope(|scope| {
                for t in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in 0..100 {
                            tx.send(t * 100 + i).unwrap();
                        }
                    });
                }
            });
            let mut got = Vec::new();
            while let Ok(v) = rx.try_recv() {
                got.push(v);
            }
            assert_eq!(got.len(), 400);
        }
    }
}
