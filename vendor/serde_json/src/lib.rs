//! Vendored JSON codec for the serde shim: renders and parses the
//! [`serde::Value`] tree. Covers `to_string`, `to_string_pretty` and
//! `from_str` — the only entry points this workspace calls.
//!
//! Non-finite floats are emitted as `null` (JSON has no NaN/Inf); the
//! shim's `f64` deserializer maps `null` back to NaN, so corrupted
//! model payloads survive a save/load cycle without a parse error.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

// ------------------------------------------------------------------ write

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value parses back as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
            write_value(out, &items[i], ind)
        }),
        Value::Object(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
            let (k, v) = &fields[i];
            write_escaped(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, v, ind);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(0));
    Ok(out)
}

// ------------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::custom(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::custom(format!("invalid float `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error::custom(format!("invalid integer `{text}`: {e}")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let s = to_string(&vec![1.5f64, 2.0, -3.25]).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, vec![1.5, 2.0, -3.25]);
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX - 7;
        let s = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), big);
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        let s = to_string(&vec![f64::NAN, f64::INFINITY]).unwrap();
        assert_eq!(s, "[null,null]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert!(back.iter().all(|f| f.is_nan()));
    }

    #[test]
    fn strings_escape_and_parse() {
        let original = "line\none \"two\"\t\\ 🚀".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Vec<(u32, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u32>("12 34").is_err());
    }
}
