//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// SplitMix64 — used to expand seeds and as a cheap internal stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The standard generator: xoshiro256++ (Blackman & Vigna). Fast, small
/// state, passes BigCrush; deterministic across platforms.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(bytes);
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
        }
        StdRng { s }
    }
}

impl StdRng {
    /// Raw xoshiro256++ state, for checkpointing (shim extension; the
    /// real `rand` exposes no equivalent, so callers must gate on this
    /// shim being in use — see vendor/README.md).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with
    /// [`StdRng::state`], resuming the stream at exactly that point.
    pub fn from_state(s: [u64; 4]) -> Self {
        // All-zero state is a fixed point of xoshiro; nudge it the same
        // way from_seed does (a captured state is never all-zero, but
        // keep the constructor total).
        if s == [0, 0, 0, 0] {
            return StdRng {
                s: [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1],
            };
        }
        StdRng { s }
    }
}

/// Alias kept for API compatibility (`SmallRng` of real rand).
pub type SmallRng = StdRng;
