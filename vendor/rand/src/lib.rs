//! Vendored, dependency-free stand-in for the `rand 0.8` API surface
//! this workspace uses. The container building this repository has no
//! network access to crates.io, so the external crates are replaced by
//! minimal shims wired in through `[patch.crates-io]`.
//!
//! Implemented subset:
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive integer and
//!   float ranges), `gen_bool`, `fill`;
//! * [`SeedableRng`] — `from_seed`, `seed_from_u64`;
//! * [`rngs::StdRng`] — a xoshiro256++ generator (deterministic, good
//!   statistical quality; NOT the upstream ChaCha12 stream, so values
//!   differ from real `rand`, which is fine for a self-contained repo).

pub mod rngs;

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform `[0, 1)` double from the top 53 bits of a `u64`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution of real
/// rand, collapsed into one trait).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Numeric types usable with [`Rng::gen_range`]. A single generic
/// `SampleRange` impl over this trait (mirroring real rand) is what
/// lets inference pin `T` from the range's element type.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "gen_range: empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range: empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(lo, hi, true, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T: SampleUniform, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self) < p
    }

    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let i: usize = rng.gen_range(0..7);
            assert!(i < 7);
            let j: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn unit_values_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.25;
            hi |= u > 0.75;
        }
        assert!(lo && hi, "unit samples did not spread");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
