//! Vendored, dependency-free stand-in for the `parking_lot` lock API
//! used by this workspace. Wraps `std::sync` primitives and strips the
//! poison layer (`lock()` returns the guard directly, recovering the
//! inner value if a holder panicked), which matches parking_lot's
//! non-poisoning semantics.

use std::sync;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u64);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
