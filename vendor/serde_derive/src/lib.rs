//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented without syn/quote (the build environment has no registry
//! access): the derive input is parsed with a small hand-rolled walker
//! over `proc_macro::TokenStream`. Supported shapes — exactly what this
//! workspace uses:
//!
//! * structs with named fields (incl. `#[serde(skip)]` and
//!   `#[serde(default)]` field attributes);
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching real serde's default representation).
//!
//! Generics and tuple structs are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consumes leading `#[...]` attributes, returning the serde flags seen.
fn take_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool, bool) {
    let mut skip = false;
    let mut default = false;
    while pos + 1 < tokens.len() {
        match (&tokens[pos], &tokens[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(head)) = inner.first() {
                    if head.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            for t in args.stream() {
                                if let TokenTree::Ident(flag) = t {
                                    match flag.to_string().as_str() {
                                        "skip" => skip = true,
                                        "default" => default = true,
                                        other => panic!(
                                            "serde shim derive: unsupported attribute `{other}`"
                                        ),
                                    }
                                }
                            }
                        }
                    }
                }
                pos += 2;
            }
            _ => break,
        }
    }
    (pos, skip, default)
}

/// Skips an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(pos) {
        if id.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Advances past one type (or expression), stopping at a comma outside
/// any angle brackets. Returns the position of the comma or end.
fn skip_to_top_level_comma(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle: i32 = 0;
    while pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[pos] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return pos,
                _ => {}
            }
        }
        pos += 1;
    }
    pos
}

/// Parses `name: Type, ...` named-field lists.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, skip, default) = take_attrs(&tokens, pos);
        pos = skip_vis(&tokens, next);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        pos = skip_to_top_level_comma(&tokens, pos);
        pos += 1; // consume the comma (or run off the end)
        fields.push(Field { name, skip, default });
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_to_top_level_comma(&tokens, pos);
        count += 1;
        pos += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let (next, _, _) = take_attrs(&tokens, pos);
        pos = next;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip a `= discriminant` and the trailing comma.
        pos = skip_to_top_level_comma(&tokens, pos);
        pos += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut pos, _, _) = take_attrs(&tokens, 0);
    pos = skip_vis(&tokens, pos);
    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde shim derive: tuple struct `{name}` is not supported")
        }
        other => panic!("serde shim derive: expected item body for `{name}`, got {other:?}"),
    };
    match keyword.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::serialize(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), {payload})]),\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{n}\"), \
                                     ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(::std::vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_field_init(owner: &str, f: &Field) -> String {
    if f.skip {
        format!("{}: ::std::default::Default::default(),\n", f.name)
    } else if f.default {
        format!(
            "{n}: match ::serde::value_get(__obj, \"{n}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
             ::std::option::Option::None => ::std::default::Default::default(),\n}},\n",
            n = f.name
        )
    } else {
        let _ = owner;
        format!(
            "{n}: match ::serde::value_get(__obj, \"{n}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?,\n\
             ::std::option::Option::None => ::serde::Deserialize::missing_field(\"{n}\")?,\n}},\n",
            n = f.name
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String =
                fields.iter().map(|f| gen_field_init(name, f)).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize(&__arr[{i}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                             if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({gets}))\n}},\n",
                            gets = gets.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: String =
                            fields.iter().map(|f| gen_field_init(name, f)).collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __inner) = &__fields[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"cannot deserialize {name} from {{__other:?}}\"))),\n\
                 }}\n}}\n}}\n"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde shim derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde shim derive: generated invalid Deserialize impl")
}
